package subiso

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/pipeline"
)

// Matcher is a reusable VF2 matcher over frozen (CSR) graphs. It owns the
// per-search scratch state — the pattern→target core array and the
// target-used bitmap — and grows it monotonically, so a warm Matcher runs
// a containment check with zero allocations: candidates are iterated
// directly off the frozen neighbor slices and boolean answers never
// materialize a Mapping. A Matcher is not safe for concurrent use; the
// package-level entry points draw from a sync.Pool.
//
// The frozen matcher explores the exact same search tree as the legacy
// mutable-graph matcher: the matching order is graph.MatchingOrder cached
// on the Frozen, candidate and neighbor enumeration follow the same
// sorted order, and node accounting is identical — so Contains,
// ContainsCtx and ContainsBudget answers (including non-definitive budget
// exhaustion) are bit-identical across the two representations.
type Matcher struct {
	t, p     *graph.Frozen
	order    []int32
	core     []int32 // pattern -> target, -1 if unmapped
	used     []bool  // target vertex already mapped
	nodes    int
	maxNodes int
	found    bool
	stopped  bool
	ctx      context.Context
	ctxErr   error
}

// NewMatcher returns an empty matcher ready for use.
func NewMatcher() *Matcher { return new(Matcher) }

var matcherPool = sync.Pool{New: func() any { return new(Matcher) }}

// reset prepares the scratch state for a search of pattern p in target t.
func (m *Matcher) reset(t, p *graph.Frozen) {
	m.t, m.p = t, p
	m.order = p.MatchingOrder()
	np, nt := p.NumVertices(), t.NumVertices()
	if cap(m.core) < np {
		m.core = make([]int32, np)
	}
	m.core = m.core[:np]
	for i := range m.core {
		m.core[i] = -1
	}
	if cap(m.used) < nt {
		m.used = make([]bool, nt)
	}
	m.used = m.used[:nt]
	for i := range m.used {
		m.used[i] = false
	}
	m.nodes = 0
	m.maxNodes = 0
	m.found = false
	m.stopped = false
	m.ctx = nil
	m.ctxErr = nil
}

// Contains reports whether pattern p is subgraph-isomorphic to target t.
// Zero allocations once the matcher's scratch buffers and the pattern's
// cached matching order are warm.
func (m *Matcher) Contains(t, p *graph.Frozen) bool {
	if quickRejectFrozen(t, p) {
		return false
	}
	m.reset(t, p)
	m.search(0)
	return m.found
}

// ContainsCtx is Contains with cooperative cancellation, polling ctx once
// every ctxCheckMask+1 expanded nodes.
func (m *Matcher) ContainsCtx(ctx context.Context, t, p *graph.Frozen) (bool, error) {
	if quickRejectFrozen(t, p) {
		return false, nil
	}
	m.reset(t, p)
	m.ctx = ctx
	m.search(0)
	if m.found {
		return true, nil
	}
	return false, m.ctxErr
}

// ContainsBudget is Contains with a bound on expanded search nodes,
// mirroring the package-level ContainsBudget contract.
func (m *Matcher) ContainsBudget(t, p *graph.Frozen, maxNodes int) (contained, definitive bool) {
	if quickRejectFrozen(t, p) {
		return false, true
	}
	m.reset(t, p)
	m.maxNodes = maxNodes
	m.search(0)
	if m.found {
		return true, true
	}
	return false, !m.stopped || m.nodes < maxNodes
}

func (m *Matcher) search(depth int) {
	if m.stopped {
		return
	}
	if m.maxNodes > 0 && m.nodes >= m.maxNodes {
		m.stopped = true
		return
	}
	if m.ctx != nil && m.nodes&ctxCheckMask == ctxCheckMask {
		if err := m.ctx.Err(); err != nil {
			m.ctxErr = err
			m.stopped = true
			return
		}
	}
	m.nodes++
	if depth == len(m.order) {
		m.found = true
		m.stopped = true
		return
	}

	pv := m.order[depth]
	// Candidate enumeration: if pv has an already-mapped pattern neighbor,
	// candidates are the target neighbors of that neighbor's image;
	// otherwise every target vertex. Both are iterated in ascending order,
	// matching the legacy matcher.
	for _, pn := range m.p.Neighbors(pv) {
		if m.core[pn] >= 0 {
			for _, tv := range m.t.Neighbors(m.core[pn]) {
				m.try(pv, tv, depth)
				if m.stopped {
					return
				}
			}
			return
		}
	}
	for tv := int32(0); int(tv) < m.t.NumVertices(); tv++ {
		m.try(pv, tv, depth)
		if m.stopped {
			return
		}
	}
}

// try maps pv -> tv if feasible and recurses.
func (m *Matcher) try(pv, tv int32, depth int) {
	if m.used[tv] {
		return
	}
	if m.p.Label(pv) != m.t.Label(tv) {
		return
	}
	if m.p.Degree(pv) > m.t.Degree(tv) {
		return
	}
	for _, pn := range m.p.Neighbors(pv) {
		if tn := m.core[pn]; tn >= 0 && !m.t.HasEdge(tv, tn) {
			return
		}
	}
	m.core[pv] = tv
	m.used[tv] = true
	m.search(depth + 1)
	m.core[pv] = -1
	m.used[tv] = false
}

// quickRejectFrozen applies the same cheap necessary conditions as
// quickReject, on precomputed frozen summaries.
func quickRejectFrozen(t, p *graph.Frozen) bool {
	if p.NumVertices() == 0 {
		return false // empty pattern trivially embeds
	}
	if p.NumVertices() > t.NumVertices() || p.NumEdges() > t.NumEdges() {
		return true
	}
	tl := t.LabelCounts()
	for l, c := range p.LabelCounts() {
		if tl[l] < c {
			return true
		}
	}
	return false
}

// ContainsCtx reports whether pattern p is subgraph-isomorphic to target
// t, with cooperative cancellation: the search polls ctx at
// node-expansion boundaries and returns ctx.Err() when cancelled before
// an answer was established. Each call is counted on the context's
// pipeline tracer (CounterVF2Calls). Both graphs are frozen on first use
// (memoized on the graphs), and the search runs on the CSR form; see
// ContainsLegacyCtx for the mutable-representation ablation path.
func ContainsCtx(ctx context.Context, t, p *graph.Graph) (bool, error) {
	pipeline.From(ctx).Add(pipeline.CounterVF2Calls, 1)
	m := matcherPool.Get().(*Matcher)
	ok, err := m.ContainsCtx(ctx, t.Freeze(), p.Freeze())
	matcherPool.Put(m)
	return ok, err
}

// Contains reports whether pattern p is subgraph-isomorphic to target t.
//
// Deprecated: use ContainsCtx. This wrapper predates PR 1's context plumbing:
// it runs uncancellable and reports to no pipeline trace.
func Contains(t, p *graph.Graph) bool {
	m := matcherPool.Get().(*Matcher)
	ok := m.Contains(t.Freeze(), p.Freeze())
	matcherPool.Put(m)
	return ok
}

// ContainsBudget is Contains with a bound on expanded search nodes. When
// the budget is exhausted before an embedding is found it returns
// (false, false): "no embedding found, answer not definitive". Callers that
// tolerate one-sided error (support estimation over many graphs) treat
// that as non-containment.
func ContainsBudget(t, p *graph.Graph, maxNodes int) (contained, definitive bool) {
	m := matcherPool.Get().(*Matcher)
	contained, definitive = m.ContainsBudget(t.Freeze(), p.Freeze(), maxNodes)
	matcherPool.Put(m)
	return contained, definitive
}
