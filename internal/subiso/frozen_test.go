package subiso

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/raceflag"
)

// randomGraph builds a random labeled graph for differential testing.
func randomGraph(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New(n, m)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for tries := 0; g.NumEdges() < m && tries < 8*m; tries++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// TestFrozenMatchesLegacy cross-checks the frozen matcher against the
// legacy mutable-graph implementation on random (host, pattern) pairs:
// identical answers for Contains, and identical (contained, definitive)
// pairs for ContainsBudget at tight budgets — the latter only holds
// because the two matchers expand the exact same search tree in the same
// order.
func TestFrozenMatchesLegacy(t *testing.T) {
	labels := []string{"C", "N", "O", "S"}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		host := randomGraph(rng, 4+rng.Intn(10), 3+rng.Intn(14), labels)
		var pat *graph.Graph
		if rng.Intn(2) == 0 {
			pat = graph.RandomConnectedSubgraph(host, 1+rng.Intn(4), rng)
		}
		if pat == nil {
			pat = randomGraph(rng, 2+rng.Intn(5), 1+rng.Intn(6), labels)
		}

		legacy := func() bool {
			if quickReject(host, pat) {
				return false
			}
			s := newState(host, pat, Options{MaxSolutions: 1})
			s.search(0)
			return len(s.results) > 0
		}()
		if got := Contains(host, pat); got != legacy {
			t.Fatalf("iter %d: frozen Contains=%v legacy=%v\nhost=%v\npat=%v",
				iter, got, legacy, host, pat)
		}
		if got, err := ContainsCtx(context.Background(), host, pat); err != nil || got != legacy {
			t.Fatalf("iter %d: frozen ContainsCtx=(%v,%v) legacy=%v", iter, got, err, legacy)
		}
		if got, err := ContainsLegacyCtx(context.Background(), host, pat); err != nil || got != legacy {
			t.Fatalf("iter %d: ContainsLegacyCtx=(%v,%v) want %v", iter, got, err, legacy)
		}

		for _, budget := range []int{1, 5, 50, 100000} {
			wantC, wantD := func() (bool, bool) {
				if quickReject(host, pat) {
					return false, true
				}
				s := newState(host, pat, Options{MaxSolutions: 1, MaxNodes: budget})
				s.search(0)
				if len(s.results) > 0 {
					return true, true
				}
				return false, !s.stopped || s.nodes < budget
			}()
			gotC, gotD := ContainsBudget(host, pat, budget)
			if gotC != wantC || gotD != wantD {
				t.Fatalf("iter %d budget %d: frozen=(%v,%v) legacy=(%v,%v)",
					iter, budget, gotC, gotD, wantC, wantD)
			}
		}
	}
}

// TestVF2ZeroAllocSteadyState pins the frozen VF2 inner loop at zero
// steady-state allocations: once the matcher scratch and the pattern's
// cached matching order are warm, a containment check allocates nothing.
// Skipped under -race, whose instrumentation allocates.
func TestVF2ZeroAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(7))
	labels := []string{"C", "N", "O"}
	type pair struct{ t, p *graph.Frozen }
	var pairs []pair
	for i := 0; i < 6; i++ {
		g := randomGraph(rng, 12, 18, labels)
		p := graph.RandomConnectedSubgraph(g, 3, rng)
		if p == nil {
			continue
		}
		pairs = append(pairs, pair{g.Freeze(), p.Freeze()})
	}
	if len(pairs) == 0 {
		t.Fatal("no test pairs")
	}
	m := NewMatcher()
	for _, pr := range pairs { // warm scratch buffers and order caches
		m.Contains(pr.t, pr.p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, pr := range pairs {
			m.Contains(pr.t, pr.p)
		}
	})
	if allocs != 0 {
		t.Fatalf("frozen VF2 steady state allocates: %v allocs/run, want 0", allocs)
	}
}
