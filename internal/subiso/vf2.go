// Package subiso implements subgraph isomorphism testing with the VF2
// algorithm (Cordella et al., IEEE TPAMI 2004), the primitive the paper uses
// for cluster-coverage checks (Sec 5, "we use the vf2 algorithm [14]").
//
// The matcher finds (non-induced) subgraph isomorphisms: an injective
// mapping from pattern vertices to target vertices preserving vertex labels
// and mapping every pattern edge onto a target edge. This is the standard
// semantics for subgraph queries ("G contains a subgraph s isomorphic
// to p").
package subiso

import (
	"context"

	"repro/internal/graph"
	"repro/internal/pipeline"
)

// Mapping maps pattern vertex IDs to target vertex IDs.
type Mapping []graph.VertexID

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// Options tunes a VF2 search.
type Options struct {
	// MaxSolutions stops the search after this many embeddings have been
	// reported. Zero means unlimited.
	MaxSolutions int
	// MaxNodes bounds the number of search-tree nodes expanded; zero means
	// unlimited. When exceeded, the search stops early (Contains may
	// under-report on pathological inputs; all callers in this repository
	// use patterns small enough that the default unlimited search is fast).
	MaxNodes int
}

type state struct {
	p, t    *graph.Graph
	core    []graph.VertexID // pattern -> target, -1 if unmapped
	used    []bool           // target vertex already mapped
	order   []graph.VertexID // pattern matching order
	opts    Options
	nodes   int
	results []Mapping
	yield   func(Mapping) bool // optional callback; return false to stop
	stopped bool
	ctx     context.Context // optional; checked every ctxCheckMask+1 nodes
	ctxErr  error
}

// ctxCheckMask throttles cancellation polling: the context is consulted
// once every 256 expanded search nodes, keeping the overhead of a
// cancellable search negligible while bounding cancellation latency.
const ctxCheckMask = 0xff

// ContainsLegacyCtx is ContainsCtx on the mutable-graph representation:
// per-call state allocation, string label comparisons, [][]VertexID
// adjacency. It explores the exact same search tree as the frozen matcher
// and exists as the DisableFrozenGraph ablation path and the baseline for
// the bench-gate-graph microbenchmark.
func ContainsLegacyCtx(ctx context.Context, t, p *graph.Graph) (bool, error) {
	pipeline.From(ctx).Add(pipeline.CounterVF2Calls, 1)
	if quickReject(t, p) {
		return false, nil
	}
	s := newState(t, p, Options{MaxSolutions: 1})
	s.ctx = ctx
	s.search(0)
	if len(s.results) > 0 {
		return true, nil
	}
	if s.ctxErr != nil {
		return false, s.ctxErr
	}
	return false, nil
}

// FindOne returns one embedding of p in t, or nil if none exists.
func FindOne(t, p *graph.Graph) Mapping {
	if quickReject(t, p) {
		return nil
	}
	s := newState(t, p, Options{MaxSolutions: 1})
	s.search(0)
	if len(s.results) == 0 {
		return nil
	}
	return s.results[0]
}

// FindAll returns up to opts.MaxSolutions embeddings of p in t (all of them
// if MaxSolutions is zero).
func FindAll(t, p *graph.Graph, opts Options) []Mapping {
	if quickReject(t, p) {
		return nil
	}
	s := newState(t, p, opts)
	s.search(0)
	return s.results
}

// ForEach invokes fn for every embedding of p in t until fn returns false
// or the search space is exhausted.
func ForEach(t, p *graph.Graph, fn func(Mapping) bool) {
	if quickReject(t, p) {
		return
	}
	s := newState(t, p, Options{})
	s.yield = fn
	s.search(0)
}

// Count returns the number of embeddings of p in t, up to limit (unlimited
// if limit is zero).
func Count(t, p *graph.Graph, limit int) int {
	n := 0
	ForEach(t, p, func(Mapping) bool {
		n++
		return limit == 0 || n < limit
	})
	return n
}

// quickReject applies cheap necessary conditions before running VF2.
func quickReject(t, p *graph.Graph) bool {
	if p.NumVertices() == 0 {
		return false // empty pattern trivially embeds
	}
	if p.NumVertices() > t.NumVertices() || p.NumEdges() > t.NumEdges() {
		return true
	}
	// Every pattern vertex label must appear at least as often in the target.
	tl := t.VertexLabels()
	for l, c := range p.VertexLabels() {
		if tl[l] < c {
			return true
		}
	}
	return false
}

func newState(t, p *graph.Graph, opts Options) *state {
	s := &state{
		p:    p,
		t:    t,
		core: make([]graph.VertexID, p.NumVertices()),
		used: make([]bool, t.NumVertices()),
		opts: opts,
	}
	for i := range s.core {
		s.core[i] = -1
	}
	s.order = matchingOrder(p)
	return s
}

// matchingOrder produces a connectivity-respecting order over pattern
// vertices; the algorithm lives in graph.MatchingOrder so the frozen
// matcher can cache the identical order per pattern.
func matchingOrder(p *graph.Graph) []graph.VertexID {
	return graph.MatchingOrder(p)
}

func (s *state) search(depth int) {
	if s.stopped {
		return
	}
	if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
		s.stopped = true
		return
	}
	if s.ctx != nil && s.nodes&ctxCheckMask == ctxCheckMask {
		if err := s.ctx.Err(); err != nil {
			s.ctxErr = err
			s.stopped = true
			return
		}
	}
	s.nodes++
	if depth == len(s.order) {
		m := Mapping(s.core).Clone()
		if s.yield != nil {
			if !s.yield(m) {
				s.stopped = true
			}
			return
		}
		s.results = append(s.results, m)
		if s.opts.MaxSolutions > 0 && len(s.results) >= s.opts.MaxSolutions {
			s.stopped = true
		}
		return
	}

	pv := s.order[depth]
	for _, tv := range s.candidates(pv) {
		if s.feasible(pv, tv) {
			s.core[pv] = tv
			s.used[tv] = true
			s.search(depth + 1)
			s.core[pv] = -1
			s.used[tv] = false
			if s.stopped {
				return
			}
		}
	}
}

// candidates enumerates target vertices to try for pattern vertex pv. If pv
// has an already-mapped neighbor, candidates are restricted to the target
// neighbors of that neighbor's image; otherwise all unused target vertices.
func (s *state) candidates(pv graph.VertexID) []graph.VertexID {
	for _, pn := range s.p.Neighbors(pv) {
		if s.core[pn] >= 0 {
			return s.t.Neighbors(s.core[pn])
		}
	}
	all := make([]graph.VertexID, 0, s.t.NumVertices())
	for v := 0; v < s.t.NumVertices(); v++ {
		all = append(all, graph.VertexID(v))
	}
	return all
}

// feasible checks VF2 feasibility of mapping pv -> tv: labels equal, tv
// unused, degree sufficient, and every mapped pattern neighbor of pv maps to
// a target neighbor of tv.
func (s *state) feasible(pv, tv graph.VertexID) bool {
	if s.used[tv] {
		return false
	}
	if s.p.Label(pv) != s.t.Label(tv) {
		return false
	}
	if s.p.Degree(pv) > s.t.Degree(tv) {
		return false
	}
	for _, pn := range s.p.Neighbors(pv) {
		if tn := s.core[pn]; tn >= 0 && !s.t.HasEdge(tv, tn) {
			return false
		}
	}
	return true
}
