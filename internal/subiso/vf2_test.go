package subiso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// build constructs a graph from labels and edge pairs.
func build(labels []string, edges [][2]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for _, e := range edges {
		g.MustAddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	return g
}

func TestContainsPathInTriangle(t *testing.T) {
	tri := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	path := build([]string{"C", "C"}, [][2]int{{0, 1}})
	if !Contains(tri, path) {
		t.Error("edge should embed in triangle")
	}
	if Contains(path, tri) {
		t.Error("triangle should not embed in edge")
	}
}

func TestLabelSensitivity(t *testing.T) {
	tgt := build([]string{"C", "O", "N"}, [][2]int{{0, 1}, {1, 2}})
	p1 := build([]string{"C", "O"}, [][2]int{{0, 1}})
	p2 := build([]string{"C", "N"}, [][2]int{{0, 1}})
	if !Contains(tgt, p1) {
		t.Error("C-O should embed")
	}
	if Contains(tgt, p2) {
		t.Error("C-N should not embed (C and N are not adjacent)")
	}
}

func TestNonInducedSemantics(t *testing.T) {
	// Pattern path C-C-C embeds in triangle CCC even though the triangle
	// has an extra edge between the path's endpoints (non-induced match).
	tri := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	p := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}})
	if !Contains(tri, p) {
		t.Error("non-induced path should embed in triangle")
	}
}

func TestFindOneValidity(t *testing.T) {
	tgt := build([]string{"C", "O", "C", "N"}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	p := build([]string{"O", "C", "N"}, [][2]int{{0, 1}, {1, 2}})
	m := FindOne(tgt, p)
	if m == nil {
		t.Fatal("no embedding found")
	}
	// Verify the mapping: labels match and edges preserved.
	for pv := 0; pv < p.NumVertices(); pv++ {
		if p.Label(graph.VertexID(pv)) != tgt.Label(m[pv]) {
			t.Errorf("label mismatch at %d", pv)
		}
	}
	for _, e := range p.Edges() {
		if !tgt.HasEdge(m[e.U], m[e.V]) {
			t.Errorf("pattern edge %v not preserved", e)
		}
	}
}

func TestFindAllCountsAutomorphisms(t *testing.T) {
	tri := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	// A single unlabeled-equivalent edge C-C has 6 embeddings in CCC
	// triangle (3 edges × 2 directions).
	p := build([]string{"C", "C"}, [][2]int{{0, 1}})
	if got := Count(tri, p, 0); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	// Triangle in triangle: 3! = 6 automorphisms.
	if got := Count(tri, tri, 0); got != 6 {
		t.Errorf("automorphism count = %d, want 6", got)
	}
}

func TestMaxSolutionsLimit(t *testing.T) {
	tri := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	p := build([]string{"C", "C"}, [][2]int{{0, 1}})
	ms := FindAll(tri, p, Options{MaxSolutions: 2})
	if len(ms) != 2 {
		t.Errorf("MaxSolutions not honored: got %d", len(ms))
	}
	if got := Count(tri, p, 3); got != 3 {
		t.Errorf("Count limit not honored: got %d", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tri := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	p := build([]string{"C", "C"}, [][2]int{{0, 1}})
	calls := 0
	ForEach(tri, p, func(Mapping) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("ForEach did not stop after callback returned false: %d calls", calls)
	}
}

func TestQuickRejects(t *testing.T) {
	small := build([]string{"C"}, nil)
	big := build([]string{"C", "C"}, [][2]int{{0, 1}})
	if Contains(small, big) {
		t.Error("larger pattern embedded in smaller target")
	}
	labelled := build([]string{"S", "S"}, [][2]int{{0, 1}})
	if Contains(big, labelled) {
		t.Error("pattern with absent labels embedded")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	tgt := build([]string{"C", "O", "N", "S"}, [][2]int{{0, 1}, {2, 3}})
	p := build([]string{"C", "O", "N", "S"}, [][2]int{{0, 1}, {2, 3}})
	if !Contains(tgt, p) {
		t.Error("disconnected pattern should embed in identical target")
	}
	pBad := build([]string{"C", "N"}, nil) // two isolated vertices
	if !Contains(tgt, pBad) {
		t.Error("isolated labeled vertices should embed")
	}
}

func TestBenzeneRingInNaphthalene(t *testing.T) {
	// Naphthalene: two fused 6-rings (10 vertices, 11 edges).
	naph := build(
		[]string{"C", "C", "C", "C", "C", "C", "C", "C", "C", "C"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {4, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 5}})
	ring := build([]string{"C", "C", "C", "C", "C", "C"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if !Contains(naph, ring) {
		t.Error("benzene ring should embed in naphthalene")
	}
	ring7 := build([]string{"C", "C", "C", "C", "C", "C", "C"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}})
	if Contains(naph, ring7) {
		t.Error("7-ring should not embed in naphthalene")
	}
}

func TestMappingInjective(t *testing.T) {
	tgt := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}})
	p := build([]string{"C", "C", "C"}, [][2]int{{0, 1}, {1, 2}})
	for _, m := range FindAll(tgt, p, Options{}) {
		seen := map[graph.VertexID]bool{}
		for _, tv := range m {
			if seen[tv] {
				t.Fatalf("mapping not injective: %v", m)
			}
			seen[tv] = true
		}
	}
}

// TestRandomSubgraphAlwaysContained is the key property: a random connected
// subgraph extracted from G must embed in G.
func TestRandomSubgraphAlwaysContained(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 10, 14)
		size := int(sizeRaw)%g.NumEdges() + 1
		sub := graph.RandomConnectedSubgraph(g, size, r)
		return sub != nil && Contains(g, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestShuffledIsomorphism: relabeling vertex IDs must not affect
// containment in either direction.
func TestShuffledIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 8, 11)
		perm := r.Perm(g.NumVertices())
		h := graph.New(g.NumVertices(), g.NumEdges())
		inv := make([]graph.VertexID, g.NumVertices())
		for i, p := range perm {
			inv[p] = graph.VertexID(i)
		}
		labels := make([]string, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			labels[perm[v]] = g.Label(graph.VertexID(v))
		}
		for _, l := range labels {
			h.AddVertex(l)
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(graph.VertexID(perm[e.U]), graph.VertexID(perm[e.V]))
		}
		return Contains(g, h) && Contains(h, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomConnectedGraph(r *rand.Rand, n, m int) *graph.Graph {
	labels := []string{"C", "N", "O"}
	g := graph.New(n, m)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.VertexID(r.Intn(i)), graph.VertexID(i))
	}
	for tries := 0; g.NumEdges() < m && tries < 10*m; tries++ {
		u, v := graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestMaxNodesBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(r, 30, 60)
	p := graph.RandomConnectedSubgraph(g, 5, r)
	full := FindAll(g, p, Options{})
	budgeted := FindAll(g, p, Options{MaxNodes: 5})
	if len(budgeted) > len(full) {
		t.Error("budgeted search found more than exhaustive search")
	}
}

func BenchmarkVF2Contains(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(r, 40, 55)
	p := graph.RandomConnectedSubgraph(g, 8, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Contains(g, p) {
			b.Fatal("lost embedding")
		}
	}
}
