package suggest

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// chaosEngine builds an engine with enough patterns that both the verify
// and the rank phases do real work to inject faults into.
func chaosEngine() *Engine {
	var ps []*core.Pattern
	labels := [][]string{
		{"A", "B", "C"}, {"A", "B", "C", "D"}, {"B", "C", "D"},
		{"A", "C", "B"}, {"C", "D", "E"}, {"A", "B", "E"},
		{"D", "E", "F"}, {"A", "B", "C", "E"},
	}
	for i, ls := range labels {
		ps = append(ps, pat(path(ls...), float64(i+1)/10))
	}
	return ps2engine(ps)
}

func ps2engine(ps []*core.Pattern) *Engine { return NewEngine(ps) }

// checkValid asserts a degraded result is still a well-formed ranked
// prefix: in-range pattern indices, no duplicates, contained-before-miss
// ordering.
func checkValid(t *testing.T, e *Engine, res *Result) {
	t.Helper()
	seen := make(map[int]bool)
	misses := false
	for _, s := range res.Suggestions {
		if s.Pattern < 0 || s.Pattern >= e.NumPatterns() {
			t.Fatalf("suggestion pattern %d out of range [0,%d)", s.Pattern, e.NumPatterns())
		}
		if seen[s.Pattern] {
			t.Fatalf("duplicate suggestion for pattern %d", s.Pattern)
		}
		seen[s.Pattern] = true
		if s.Contained && misses {
			t.Fatal("contained suggestion ranked after a near-miss")
		}
		if !s.Contained {
			misses = true
		}
	}
	if len(res.Suggestions) > res.Stats.Ranked && res.Stats.Ranked > 0 {
		t.Fatalf("returned %d suggestions but ranked only %d", len(res.Suggestions), res.Stats.Ranked)
	}
}

// TestChaosSuggestStallInRankingReturnsPrefix stalls the ranking loop past
// the keystroke budget after two candidates: the call must return the
// prefix ranked so far, degraded but valid — never an error, never a
// block until the stall would have "finished" naturally.
func TestChaosSuggestStallInRankingReturnsPrefix(t *testing.T) {
	eng := chaosEngine()
	inj := faultinject.New().StallAfter(pipeline.CounterSuggestRanked, 2, 400*time.Millisecond)
	ctx := pipeline.WithTrace(context.Background(), inj)
	res, err := eng.SuggestCtx(ctx, path("A", "B"), Options{Budget: 60 * time.Millisecond, TopK: 8})
	if err != nil {
		t.Fatalf("stalled keystroke must not error, got %v", err)
	}
	if got := inj.Fired(); len(got) != 1 {
		t.Fatalf("injected stall did not fire: %v", got)
	}
	if !res.Stats.Degraded {
		t.Errorf("stats = %+v, want degraded after mid-rank stall", res.Stats)
	}
	if res.Stats.Ranked < 1 || res.Stats.Ranked >= eng.NumPatterns() {
		t.Errorf("ranked = %d, want a proper prefix of %d candidates", res.Stats.Ranked, eng.NumPatterns())
	}
	if len(res.Suggestions) == 0 {
		t.Error("prefix degradation returned no suggestions at all")
	}
	checkValid(t, eng, res)
}

// TestChaosSuggestStallInVerifyDegradesToUnverified stalls the first VF2
// containment search past the keystroke budget: verification is abandoned
// and the call degrades to ranking the pruned-but-unverified candidate
// set — still suggestions, still no error.
func TestChaosSuggestStallInVerifyDegradesToUnverified(t *testing.T) {
	eng := chaosEngine()
	inj := faultinject.New().StallAfter(pipeline.CounterVF2Calls, 1, 300*time.Millisecond)
	ctx := pipeline.WithTrace(context.Background(), inj)
	res, err := eng.SuggestCtx(ctx, path("A", "B"), Options{Budget: 50 * time.Millisecond, TopK: 8})
	if err != nil {
		t.Fatalf("stalled verification must not error, got %v", err)
	}
	if got := inj.Fired(); len(got) != 1 {
		t.Fatalf("injected stall did not fire: %v", got)
	}
	if res.Stats.Verified {
		t.Error("verification reported complete despite the stall")
	}
	if !res.Stats.Degraded {
		t.Errorf("stats = %+v, want degraded", res.Stats)
	}
	checkValid(t, eng, res)
}

// TestChaosSuggestWorkerPanicContainedAsStageFault panics inside a VF2
// verification worker: the fault must surface as a typed
// *resilience.StageFault on the result — attributed, with the injected
// payload preserved — while the keystroke still answers with degraded
// (unverified) suggestions.
func TestChaosSuggestWorkerPanicContainedAsStageFault(t *testing.T) {
	eng := chaosEngine()
	inj := faultinject.New().PanicAfter(pipeline.CounterVF2Calls, 1, "poisoned pattern graph")
	ctx := pipeline.WithTrace(context.Background(), inj)
	res, err := eng.SuggestCtx(ctx, path("A", "B"), Options{Budget: 2 * time.Second, TopK: 8})
	if err != nil {
		t.Fatalf("contained worker panic must not error, got %v", err)
	}
	if got := inj.Fired(); len(got) != 1 {
		t.Fatalf("injected panic did not fire: %v", got)
	}
	if len(res.Faults) != 1 || res.Stats.Faults != 1 {
		t.Fatalf("faults = %d (stats %d), want exactly 1 typed fault", len(res.Faults), res.Stats.Faults)
	}
	f := res.Faults[0]
	var p *faultinject.Panic
	if !asPanic(f.Value, &p) {
		t.Errorf("fault value %T does not carry the injected *faultinject.Panic", f.Value)
	}
	if res.Stats.Verified {
		t.Error("verification reported complete despite the contained panic")
	}
	if !res.Stats.Degraded {
		t.Errorf("stats = %+v, want degraded", res.Stats)
	}
	if len(res.Suggestions) == 0 {
		t.Error("panic containment returned no suggestions at all")
	}
	checkValid(t, eng, res)
}

// asPanic digs the injected payload out of a recovered panic value.
func asPanic(v any, out **faultinject.Panic) bool {
	switch x := v.(type) {
	case *faultinject.Panic:
		*out = x
		return true
	case *resilience.StageFault:
		return asPanic(x.Value, out)
	case error:
		return errors.As(x, out)
	}
	return false
}

// TestChaosSuggestUnbudgetedStaysClean runs the same engine unbudgeted
// with no injector: nothing may degrade, and the full candidate set must
// rank — the baseline the chaos runs above are prefixes of.
func TestChaosSuggestUnbudgetedStaysClean(t *testing.T) {
	eng := chaosEngine()
	res, err := eng.SuggestCtx(context.Background(), path("A", "B"), Options{Budget: -1, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || !res.Stats.Verified {
		t.Errorf("stats = %+v, want verified and undegraded", res.Stats)
	}
	if res.Stats.Ranked != eng.NumPatterns() {
		t.Errorf("ranked = %d, want all %d", res.Stats.Ranked, eng.NumPatterns())
	}
	checkValid(t, eng, res)
}
