package suggest

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
)

// diffFixture derives a pattern set and partial queries from the seeded
// synthetic dataset: patterns are the first graphs with seeded scores,
// queries are connected edge-prefixes of later graphs — the shapes a user
// grows keystroke by keystroke.
func diffFixture(seed int64) ([]*core.Pattern, []*graph.Graph) {
	db := dataset.AIDSLike(40, seed)
	rng := rand.New(rand.NewSource(seed))
	var ps []*core.Pattern
	for i := 0; i < 12 && i < db.Len(); i++ {
		ps = append(ps, &core.Pattern{Graph: db.Graph(i), Score: rng.Float64()})
	}
	var qs []*graph.Graph
	for i := 12; i < 24 && i < db.Len(); i++ {
		g := db.Graph(i)
		es := g.Edges()
		if len(es) == 0 {
			continue
		}
		n := 1 + rng.Intn(len(es))
		q, _ := g.EdgeSubgraph(es[:n])
		qs = append(qs, q)
	}
	return ps, qs
}

// stripElapsed zeroes the only wall-clock-dependent field so results can
// be compared bit-for-bit.
func stripElapsed(res *Result) *Result {
	res.Stats.Elapsed = 0
	return res
}

// TestDifferentialSuggestDeterministicAcrossGOMAXPROCS pins that an
// unbudgeted suggestion ranking is a pure function of (patterns, query,
// options): bit-identical across GOMAXPROCS values (the cover engine
// verifies candidates in parallel) and across repeated runs on a fresh
// engine (memo state must not leak into results).
func TestDifferentialSuggestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, seed := range []int64{1, 7, 42} {
		ps, qs := diffFixture(seed)
		opts := Options{Budget: -1, TopK: 6}

		var baseline []*Result
		for _, procs := range []int{1, 2, runtime.NumCPU()} {
			runtime.GOMAXPROCS(procs)
			eng := NewEngine(ps)
			var got []*Result
			for _, q := range qs {
				res, err := eng.SuggestCtx(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("seed %d procs %d: %v", seed, procs, err)
				}
				got = append(got, stripElapsed(res))
			}
			if baseline == nil {
				baseline = got
				continue
			}
			for i := range got {
				if !reflect.DeepEqual(baseline[i], got[i]) {
					t.Fatalf("seed %d procs %d query %d: ranking diverged\nwant %+v\ngot  %+v",
						seed, procs, i, baseline[i], got[i])
				}
			}
		}
	}
}

// TestDifferentialSuggestMemoInvariant pins that replaying keystrokes on a
// warm engine (memoized verdicts) returns exactly what a cold engine
// returns — the cache may only change speed, never results.
func TestDifferentialSuggestMemoInvariant(t *testing.T) {
	ps, qs := diffFixture(21)
	opts := Options{Budget: -1, TopK: 6}
	warm := NewEngine(ps)
	for round := 0; round < 2; round++ {
		for i, q := range qs {
			cold := NewEngine(ps)
			want, err := cold.SuggestCtx(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := warm.SuggestCtx(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripElapsed(want), stripElapsed(got)) {
				t.Fatalf("round %d query %d: warm engine diverged from cold\nwant %+v\ngot  %+v",
					round, i, want, got)
			}
		}
	}
}

// TestDifferentialSuggestMCSModeDeterministic pins the MCS ranking mode
// the same way (its MCCS searches have their own budgeted search trees).
func TestDifferentialSuggestMCSModeDeterministic(t *testing.T) {
	ps, qs := diffFixture(5)
	if len(qs) > 4 {
		qs = qs[:4] // MCCS is the expensive ranking mode; a few queries suffice
	}
	opts := Options{Budget: -1, TopK: 6, MCS: true, MCSBudget: 20000}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var baseline []*Result
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		eng := NewEngine(ps)
		var got []*Result
		for _, q := range qs {
			res, err := eng.SuggestCtx(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, stripElapsed(res))
		}
		if baseline == nil {
			baseline = got
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(baseline[i], got[i]) {
				t.Fatalf("MCS mode procs %d query %d: ranking diverged", procs, i)
			}
		}
	}
}
