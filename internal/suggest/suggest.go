// Package suggest is the online query-autocompletion engine: given a
// user's partial visual query and the canned pattern set a snapshot
// currently serves, it returns the top-k patterns ranked as completions —
// the interactive scenario CATAPULT's selection exists to feed (the GUIDE
// workload in SNIPPETS.md #2: per-keystroke suggestions with no offline
// preprocessing beyond the pattern set itself).
//
// One call runs three phases over the engine's fixed pattern set:
//
//  1. Prune: the cover engine's gindex path-feature filter drops patterns
//     that cannot contain the partial (features are anti-monotone under
//     subgraph isomorphism, so the survivor set is a superset of the true
//     containers).
//  2. Verify: the surviving candidates' containment of the partial is
//     decided through the cover engine — memoized on canonical forms, so
//     a keystroke replayed by any user on the same snapshot is a cache
//     hit — and survivors split into true completions (partial ⊆ pattern)
//     and near-misses.
//  3. Rank: completions are ranked by closeness — for a verified
//     container the graph edit distance is exactly the completion delta
//     |Vp|-|Vq| + |Ep|-|Eq|; for a near-miss it is the A*/bipartite GED
//     (or the MCCS overlap in MCS mode) — weighted by the pattern's
//     selection score (Eq 2), so a high-value pattern outranks an equally
//     close low-value one.
//
// Everything runs under a per-keystroke soft budget (~100ms) carried by a
// resilience.Controller. The engine degrades instead of blocking or
// failing: verification that blows the budget falls back to the pruned
// but unverified candidate set, exact GED downgrades to the bipartite
// approximation at half budget (the controller's existing ladder), and a
// ranking loop cut off mid-way returns the prefix ranked so far. Worker
// panics inside verification are contained as typed *resilience.StageFault
// values on the Result, never crashes. With a non-positive budget
// (Options.Budget < 0) the call is unbudgeted and fully deterministic: the
// result is a pure function of (patterns, query, options), independent of
// GOMAXPROCS and wall clock, which the differential suite pins.
package suggest

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/ged"
	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// DefaultTopK is the suggestion count returned when Options.TopK is zero.
const DefaultTopK = 5

// DefaultBudget is the per-keystroke soft budget when Options.Budget is
// zero: at 100ms a suggestion fits inside one perceptual moment, the bar
// interactive query interfaces aim for.
const DefaultBudget = 100 * time.Millisecond

// DefaultMaxCandidates caps how many pruned candidates enter the ranking
// loop when Options.MaxCandidates is zero.
const DefaultMaxCandidates = 64

// Options configures one SuggestCtx call. The zero value asks for the
// defaults; fields are independent knobs, so a caller can e.g. raise TopK
// without touching the budget.
type Options struct {
	// TopK is the maximum number of suggestions returned
	// (default DefaultTopK).
	TopK int
	// Budget is the per-keystroke soft budget. Zero means DefaultBudget;
	// negative disables budgeting entirely — the call then never degrades
	// and its ranking is deterministic (the differential-test mode).
	Budget time.Duration
	// MaxCandidates caps the candidates entering the ranking loop,
	// highest-scored first (default DefaultMaxCandidates; negative means
	// unlimited). The cap bounds worst-case ranking work before the
	// budget's dynamic prefix cut even starts.
	MaxCandidates int
	// MCS ranks near-miss candidates by MCCS overlap instead of graph
	// edit distance. Verified completions rank identically either way
	// (their distance and overlap are both exact by containment).
	MCS bool
	// MCSBudget is the node budget per MCCS search in MCS mode
	// (default mcs.DefaultBudget).
	MCSBudget int
}

func (o *Options) defaults() {
	if o.TopK == 0 {
		o.TopK = DefaultTopK
	}
	if o.Budget == 0 {
		o.Budget = DefaultBudget
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = DefaultMaxCandidates
	}
}

// Suggestion is one ranked completion of the partial query.
type Suggestion struct {
	// Pattern indexes the engine's pattern set (and the serving
	// snapshot's GET /v1/patterns array).
	Pattern int `json:"pattern"`
	// Score is the pattern's selection score (Eq 2), the ranking weight.
	Score float64 `json:"score"`
	// Contained reports that the partial query was verified subgraph-
	// isomorphic to the pattern — accepting it is a pure extension.
	Contained bool `json:"contained"`
	// Distance is the graph edit distance from the partial to the
	// pattern: exact (the completion delta) when Contained, otherwise the
	// A* estimate or its bipartite approximation.
	Distance int `json:"distance"`
	// Approx marks Distance as the bipartite approximation (the budget
	// ladder's GED downgrade).
	Approx bool `json:"approx"`
	// Overlap is the shared fraction of combined pattern elements in
	// [0,1]: exact for a verified container, the MCCS similarity in MCS
	// mode, and a distance-derived estimate otherwise.
	Overlap float64 `json:"overlap"`
	// Rank is the final ordering weight (higher first): closeness
	// weighted by the selection score. Contained suggestions always sort
	// before near-misses regardless of Rank.
	Rank float64 `json:"rank"`
	// AddVertices and AddEdges are the elements accepting the suggestion
	// would add beyond the partial (meaningful when Contained).
	AddVertices int `json:"add_vertices"`
	AddEdges    int `json:"add_edges"`
}

// Stats summarizes one suggestion call: how far the prune → verify → rank
// ladder got and what the budget cut.
type Stats struct {
	// Patterns is the engine's pattern-set size.
	Patterns int `json:"patterns"`
	// Candidates survived gindex pruning.
	Candidates int `json:"candidates"`
	// Capped counts candidates dropped by Options.MaxCandidates.
	Capped int `json:"capped"`
	// Verified reports that containment verification completed; false
	// means the budget (or a contained fault) degraded the call to the
	// pruned-but-unverified candidate set.
	Verified bool `json:"verified"`
	// Contained counts verified containers among the ranked candidates.
	Contained int `json:"contained"`
	// Ranked counts candidates whose closeness ranking ran; under budget
	// pressure this is a prefix of the candidate list.
	Ranked int `json:"ranked"`
	// ApproxRanked counts rankings that used the bipartite GED downgrade.
	ApproxRanked int `json:"approx_ranked"`
	// Degraded reports that any rung of the ladder was cut short;
	// DegradeReason names the first cut.
	Degraded      bool   `json:"degraded"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	// Faults counts worker panics contained during this call.
	Faults int `json:"faults"`
	// Elapsed is the wall-clock time of the call.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Result is one suggestion call's outcome. A budget-exhausted call is not
// an error: it returns the (possibly empty) ranked prefix with
// Stats.Degraded set.
type Result struct {
	Suggestions []Suggestion `json:"suggestions"`
	Stats       Stats        `json:"stats"`
	// Faults holds worker panics contained during the call (typed, with
	// the panicking goroutine's stack), for callers that surface health.
	Faults []*resilience.StageFault `json:"-"`
}

// Engine answers suggestion calls against a fixed pattern set. It wraps a
// cover engine whose hosts are the pattern graphs, so containment
// verdicts are memoized across keystrokes, users and coalesced requests
// on the same snapshot. Safe for concurrent use; build one per snapshot.
type Engine struct {
	patterns []*core.Pattern
	cov      *cover.Engine
}

// NewEngine builds a suggestion engine over patterns. The slice is
// copied; the patterns themselves must be immutable (they are, by the
// serving layer's copy-and-swap discipline).
func NewEngine(patterns []*core.Pattern) *Engine {
	ps := append([]*core.Pattern(nil), patterns...)
	gs := make([]*graph.Graph, len(ps))
	for i, p := range ps {
		gs[i] = p.Graph
	}
	return &Engine{patterns: ps, cov: cover.New(gs, cover.Options{})}
}

// NumPatterns returns the size of the engine's pattern set.
func (e *Engine) NumPatterns() int { return len(e.patterns) }

// Pattern returns the i-th pattern of the engine's set.
func (e *Engine) Pattern(i int) *core.Pattern { return e.patterns[i] }

// CoverStats returns the wrapped containment engine's memo statistics.
func (e *Engine) CoverStats() cover.Stats { return e.cov.Stats() }

// SuggestCtx ranks the engine's patterns as completions of the partial
// query q. With a positive budget (the default) the call degrades under
// pressure and returns a valid ranked prefix instead of an error; the
// only error causes are a nil/oversized query, cancellation of a parent
// ctx in unbudgeted mode, and non-salvageable internal failures. An empty
// partial (no vertices) is the cold-start case: the top-k patterns by
// selection score, the panel a fresh query canvas shows.
func (e *Engine) SuggestCtx(ctx context.Context, q *graph.Graph, opts Options) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("suggest: nil query")
	}
	opts.defaults()
	start := time.Now()
	res := &Result{Stats: Stats{Patterns: len(e.patterns)}}

	// Arm the per-keystroke controller: the whole call is one sole phase,
	// so the controller's existing ladder (Overrun, the half-budget GED
	// downgrade) applies without pipeline phase weights.
	if opts.Budget > 0 {
		ctrl := resilience.NewController(resilience.Config{}, start, start.Add(opts.Budget))
		ctrl.Observe(pipeline.From(ctx))
		ctrl.BeginSolePhase(pipeline.StageSuggest)
		defer ctrl.EndPhase()
		ctx = resilience.WithController(ctx, ctrl)
		if dl, ok := ctrl.PhaseDeadline(); ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadlineCause(ctx, dl, resilience.ErrBudgetExhausted)
			defer cancel()
		}
	}
	ctrl := resilience.From(ctx)

	if q.NumVertices() == 0 {
		e.coldStart(res, opts.TopK)
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}

	// Prune: the index narrows which patterns can possibly contain the
	// partial — only those need VF2 verification. Patterns the index
	// rejects are known non-containers; they stay in the ranking pool as
	// near-misses (a close pattern the user almost drew is still a good
	// suggestion), just never verified.
	cands := e.cov.Candidates(q)
	res.Stats.Candidates = len(cands)
	tr := pipeline.From(ctx)
	tr.Add(pipeline.CounterSuggestCandidates, int64(len(cands)))

	// Verify containment of the partial inside each candidate, guarded:
	// a worker panic or a budget-exhausted verification degrades to the
	// unverified candidate set instead of failing the keystroke.
	var verdicts []bool
	if len(cands) > 0 {
		var verr error
		fault := resilience.Guard(ctx, pipeline.StageSuggest,
			func() { verdicts, verr = e.cov.Verdicts(ctx, q) })
		switch {
		case fault != nil:
			res.Faults = append(res.Faults, fault)
			res.Stats.Faults++
			verdicts = nil
			e.degrade(ctrl, &res.Stats, "suggest_verify_fault")
		case verr == nil:
			res.Stats.Verified = true
		case ctrl != nil && resilience.Salvageable(verr):
			verdicts = nil
			e.degrade(ctrl, &res.Stats, "suggest_verify_budget")
		default:
			return nil, verr
		}
	}

	// Candidate order entering the ranking loop: verified containers
	// first, then by selection score descending, pattern index as the
	// total tie-break — so both the static cap and a budget prefix cut
	// keep the most valuable candidates.
	type cand struct {
		idx       int
		contained bool
	}
	list := make([]cand, len(e.patterns))
	for i := range e.patterns {
		list[i] = cand{idx: i, contained: verdicts != nil && verdicts[i]}
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.contained != b.contained {
			return a.contained
		}
		sa, sb := e.patterns[a.idx].Score, e.patterns[b.idx].Score
		if sa != sb {
			return sa > sb
		}
		return a.idx < b.idx
	})
	if opts.MaxCandidates > 0 && len(list) > opts.MaxCandidates {
		res.Stats.Capped = len(list) - opts.MaxCandidates
		list = list[:opts.MaxCandidates]
	}

	// Rank. The loop polls the budget between candidates; an overrun
	// keeps the prefix ranked so far ("fewer candidates" is the ladder's
	// last rung before returning nothing at all).
	qa := q.NumVertices() + q.NumEdges()
	for _, c := range list {
		if ctrl != nil && (ctrl.Overrun() || ctx.Err() != nil) {
			e.degrade(ctrl, &res.Stats, "suggest_rank_prefix")
			ctrl.Count("suggest_rank_dropped", int64(len(list)-res.Stats.Ranked))
			break
		}
		tr.Add(pipeline.CounterSuggestRanked, 1)
		s, err := e.rank(ctx, ctrl, res, q, qa, c.idx, c.contained, opts)
		if err != nil {
			return nil, err
		}
		if s == nil { // salvageable cut inside one ranking step
			break
		}
		res.Suggestions = append(res.Suggestions, *s)
		res.Stats.Ranked++
		if c.contained {
			res.Stats.Contained++
		}
	}

	sort.Slice(res.Suggestions, func(i, j int) bool {
		a, b := res.Suggestions[i], res.Suggestions[j]
		if a.Contained != b.Contained {
			return a.Contained
		}
		if a.Rank != b.Rank {
			return a.Rank > b.Rank
		}
		return a.Pattern < b.Pattern
	})
	if len(res.Suggestions) > opts.TopK {
		res.Suggestions = res.Suggestions[:opts.TopK]
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// rank scores one candidate. A nil, nil return means a salvageable budget
// cut happened inside the step (MCS mode only; GED steps never block on
// the context) and the caller should keep its prefix.
func (e *Engine) rank(ctx context.Context, ctrl *resilience.Controller, res *Result,
	q *graph.Graph, qa int, idx int, contained bool, opts Options) (*Suggestion, error) {
	p := e.patterns[idx]
	pa := p.Graph.NumVertices() + p.Graph.NumEdges()
	s := &Suggestion{Pattern: idx, Score: p.Score, Contained: contained}
	switch {
	case contained:
		// The partial embeds into the pattern, so the cheapest edit path
		// is pure insertion: GED and overlap are exact and free.
		s.AddVertices = p.Graph.NumVertices() - q.NumVertices()
		s.AddEdges = p.Graph.NumEdges() - q.NumEdges()
		s.Distance = s.AddVertices + s.AddEdges
		if pa > 0 {
			s.Overlap = float64(qa) / float64(pa)
		}
	case opts.MCS:
		sim, err := mcs.SimilarityMCCSCtx(ctx, q, p.Graph, opts.MCSBudget)
		if err != nil {
			if ctrl != nil && resilience.Salvageable(err) {
				e.degrade(ctrl, &res.Stats, "suggest_rank_prefix")
				return nil, nil
			}
			return nil, err
		}
		s.Overlap = sim
		s.Distance = ged.LowerBound(q, p.Graph)
	default:
		if resilience.GEDApprox(ctx) {
			s.Distance = ged.Approx(q, p.Graph)
			s.Approx = true
			res.Stats.ApproxRanked++
			e.degrade(ctrl, &res.Stats, "suggest_ged_approx")
		} else {
			s.Distance = ged.Distance(q, p.Graph)
		}
		if qa+pa > 0 {
			s.Overlap = 1 - float64(s.Distance)/float64(qa+pa)
			if s.Overlap < 0 {
				s.Overlap = 0
			}
		}
	}
	closeness := 1 / (1 + float64(s.Distance))
	if opts.MCS && !contained {
		closeness = s.Overlap
	}
	s.Rank = closeness * (1 + s.Score)
	return s, nil
}

// coldStart fills res with the top-k patterns by selection score — the
// suggestion set for an empty canvas.
func (e *Engine) coldStart(res *Result, topK int) {
	order := make([]int, len(e.patterns))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := e.patterns[order[i]].Score, e.patterns[order[j]].Score
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	if len(order) > topK {
		order = order[:topK]
	}
	res.Stats.Candidates = len(e.patterns)
	for _, idx := range order {
		p := e.patterns[idx]
		res.Suggestions = append(res.Suggestions, Suggestion{
			Pattern:     idx,
			Score:       p.Score,
			Contained:   true, // the empty query embeds in every pattern
			Distance:    p.Graph.NumVertices() + p.Graph.NumEdges(),
			AddVertices: p.Graph.NumVertices(),
			AddEdges:    p.Graph.NumEdges(),
			Rank:        p.Score,
		})
		res.Stats.Ranked++
		res.Stats.Contained++
	}
}

// degrade records the first degradation reason on the stats and mirrors
// it onto the controller's health ledger.
func (e *Engine) degrade(ctrl *resilience.Controller, st *Stats, reason string) {
	if !st.Degraded {
		st.Degraded = true
		st.DegradeReason = reason
	}
	if ctrl != nil {
		ctrl.MarkDegraded(reason)
		ctrl.Count(reason, 1)
	}
}
