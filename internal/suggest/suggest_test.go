package suggest

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// path builds a labeled path graph A-B-C-... from the given labels.
func path(labels ...string) *graph.Graph {
	g := graph.New(len(labels), len(labels))
	var prev graph.VertexID
	for i, l := range labels {
		v := g.AddVertex(l)
		if i > 0 {
			g.MustAddEdge(prev, v)
		}
		prev = v
	}
	return g
}

func pat(g *graph.Graph, score float64) *core.Pattern {
	return &core.Pattern{Graph: g, Score: score}
}

// unbudgeted disables the keystroke budget so tests are deterministic.
var unbudgeted = Options{Budget: -1}

func TestSuggestRanksContainersFirst(t *testing.T) {
	eng := NewEngine([]*core.Pattern{
		pat(path("A", "B", "C"), 0.2), // contains A-B, delta 2
		pat(path("C", "D"), 0.9),      // does not contain A-B
		pat(path("A", "B"), 0.1),      // equals the partial, delta 0
	})
	res, err := eng.SuggestCtx(context.Background(), path("A", "B"), unbudgeted)
	if err != nil {
		t.Fatalf("SuggestCtx: %v", err)
	}
	if got := len(res.Suggestions); got != 3 {
		t.Fatalf("suggestions = %d, want 3", got)
	}
	// Containers first: the exact match (distance 0) outranks the
	// extension (distance 2) despite its lower score; the non-container
	// comes last even with the highest score.
	if s := res.Suggestions[0]; s.Pattern != 2 || !s.Contained || s.Distance != 0 {
		t.Errorf("top suggestion = %+v, want pattern 2 contained at distance 0", s)
	}
	if s := res.Suggestions[1]; s.Pattern != 0 || !s.Contained || s.Distance != 2 ||
		s.AddVertices != 1 || s.AddEdges != 1 {
		t.Errorf("second suggestion = %+v, want pattern 0 contained, +1v +1e", s)
	}
	if s := res.Suggestions[2]; s.Pattern != 1 || s.Contained {
		t.Errorf("third suggestion = %+v, want non-contained pattern 1", s)
	}
	if !res.Stats.Verified || res.Stats.Contained != 2 || res.Stats.Degraded {
		t.Errorf("stats = %+v, want verified, 2 contained, not degraded", res.Stats)
	}
}

func TestSuggestColdStart(t *testing.T) {
	eng := NewEngine([]*core.Pattern{
		pat(path("A", "B"), 0.1),
		pat(path("C", "D", "E"), 0.5),
		pat(path("F"), 0.3),
	})
	res, err := eng.SuggestCtx(context.Background(), graph.New(0, 0), Options{Budget: -1, TopK: 2})
	if err != nil {
		t.Fatalf("SuggestCtx: %v", err)
	}
	if len(res.Suggestions) != 2 {
		t.Fatalf("suggestions = %d, want 2", len(res.Suggestions))
	}
	if res.Suggestions[0].Pattern != 1 || res.Suggestions[1].Pattern != 2 {
		t.Errorf("cold-start order = %d,%d, want 1,2 (by score)",
			res.Suggestions[0].Pattern, res.Suggestions[1].Pattern)
	}
	if s := res.Suggestions[0]; !s.Contained || s.AddVertices != 3 || s.AddEdges != 2 {
		t.Errorf("cold-start top = %+v, want contained with full completion delta", s)
	}
}

func TestSuggestTopKTruncates(t *testing.T) {
	var ps []*core.Pattern
	for i := 0; i < 10; i++ {
		ps = append(ps, pat(path("A", "B", "C"), float64(i)/10))
	}
	eng := NewEngine(ps)
	res, err := eng.SuggestCtx(context.Background(), path("A", "B"), Options{Budget: -1, TopK: 3})
	if err != nil {
		t.Fatalf("SuggestCtx: %v", err)
	}
	if len(res.Suggestions) != 3 {
		t.Fatalf("suggestions = %d, want 3", len(res.Suggestions))
	}
	if res.Stats.Ranked != 10 {
		t.Errorf("ranked = %d, want 10", res.Stats.Ranked)
	}
}

func TestSuggestMaxCandidatesCap(t *testing.T) {
	var ps []*core.Pattern
	for i := 0; i < 8; i++ {
		ps = append(ps, pat(path("A", "B", "C"), float64(i)/10))
	}
	eng := NewEngine(ps)
	res, err := eng.SuggestCtx(context.Background(), path("A", "B"),
		Options{Budget: -1, MaxCandidates: 3})
	if err != nil {
		t.Fatalf("SuggestCtx: %v", err)
	}
	if res.Stats.Capped != 5 || res.Stats.Ranked != 3 {
		t.Errorf("capped = %d ranked = %d, want 5 capped, 3 ranked", res.Stats.Capped, res.Stats.Ranked)
	}
	// Highest-scored candidates must survive the cap.
	for _, s := range res.Suggestions {
		if s.Score < 0.5 {
			t.Errorf("capped ranking kept low-score pattern %d (score %.2f)", s.Pattern, s.Score)
		}
	}
}

func TestSuggestExhaustedBudgetReturnsPrefixNotError(t *testing.T) {
	var ps []*core.Pattern
	for i := 0; i < 20; i++ {
		ps = append(ps, pat(path("A", "B", "C", "D"), float64(i)/20))
	}
	eng := NewEngine(ps)
	res, err := eng.SuggestCtx(context.Background(), path("A", "B"), Options{Budget: time.Nanosecond})
	if err != nil {
		t.Fatalf("exhausted budget must not error, got %v", err)
	}
	if !res.Stats.Degraded {
		t.Errorf("stats = %+v, want degraded under a 1ns budget", res.Stats)
	}
	if res.Stats.Ranked != len(res.Suggestions) && len(res.Suggestions) > res.Stats.Ranked {
		t.Errorf("suggestions = %d > ranked = %d", len(res.Suggestions), res.Stats.Ranked)
	}
}

func TestSuggestMCSMode(t *testing.T) {
	eng := NewEngine([]*core.Pattern{
		pat(path("A", "B", "C"), 0.5),
		pat(path("X", "Y"), 0.5),
	})
	// Query A-B-X: contained in neither; MCS overlap with A-B-C (shared
	// A-B) beats overlap with X-Y (shared X only, no shared edge).
	q := path("A", "B", "X")
	res, err := eng.SuggestCtx(context.Background(), q, Options{Budget: -1, MCS: true})
	if err != nil {
		t.Fatalf("SuggestCtx: %v", err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if res.Suggestions[0].Pattern != 0 {
		t.Errorf("MCS top = pattern %d, want 0 (larger overlap)", res.Suggestions[0].Pattern)
	}
	if res.Suggestions[0].Overlap <= 0 {
		t.Errorf("MCS overlap = %v, want > 0", res.Suggestions[0].Overlap)
	}
}

func TestSuggestNilAndEmptyEngine(t *testing.T) {
	eng := NewEngine(nil)
	if _, err := eng.SuggestCtx(context.Background(), nil, unbudgeted); err == nil {
		t.Error("nil query must error")
	}
	res, err := eng.SuggestCtx(context.Background(), path("A"), unbudgeted)
	if err != nil {
		t.Fatalf("empty engine: %v", err)
	}
	if len(res.Suggestions) != 0 {
		t.Errorf("empty engine returned %d suggestions", len(res.Suggestions))
	}
}

func TestSuggestMemoizesAcrossKeystrokes(t *testing.T) {
	eng := NewEngine([]*core.Pattern{
		pat(path("A", "B", "C"), 0.5),
		pat(path("A", "B", "C", "D"), 0.4),
	})
	q := path("A", "B")
	if _, err := eng.SuggestCtx(context.Background(), q, unbudgeted); err != nil {
		t.Fatal(err)
	}
	first := eng.CoverStats()
	if _, err := eng.SuggestCtx(context.Background(), q, unbudgeted); err != nil {
		t.Fatal(err)
	}
	second := eng.CoverStats()
	if second.Misses != first.Misses {
		t.Errorf("replayed keystroke missed the verdict memo: %d -> %d misses",
			first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Errorf("replayed keystroke did not hit the verdict memo: %d -> %d hits",
			first.Hits, second.Hits)
	}
}
