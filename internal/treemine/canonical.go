// Package treemine mines frequent subtrees from a graph database and
// selects a discriminative subset of them as clustering features, the
// machinery behind CATAPULT's coarse clustering (Sec 4.1, Algorithm 2).
//
// Frequent subtrees are free (unrooted) labeled trees. Each mined tree is
// identified by a canonical string produced in two steps, following the
// paper (Fig 5): the tree is rooted at its center and normalized bottom-up
// (subtree families sorted by their canonical encodings), then the
// normalized tree is scanned top-down, level by level, in breadth-first
// order; '$' separates sibling families and '#' terminates the string, with
// each child prefixed by its edge label (always "1" here since the data
// model has no independent edge labels).
package treemine

import (
	"sort"
	"strings"

	"repro/internal/graph"
)

// Tree is a rooted representation of a mined free tree. Vertex 0 is the
// root; Parent[v] is the parent of vertex v (Parent[0] = -1).
type Tree struct {
	Labels []string
	Parent []int
}

// NumVertices returns the number of vertices.
func (t *Tree) NumVertices() int { return len(t.Labels) }

// NumEdges returns the number of edges (vertices - 1).
func (t *Tree) NumEdges() int { return len(t.Labels) - 1 }

// Graph converts the tree to a graph.Graph pattern.
func (t *Tree) Graph() *graph.Graph {
	g := graph.New(len(t.Labels), len(t.Labels)-1)
	for _, l := range t.Labels {
		g.AddVertex(l)
	}
	for v := 1; v < len(t.Parent); v++ {
		g.MustAddEdge(graph.VertexID(t.Parent[v]), graph.VertexID(v))
	}
	return g
}

// children builds the child adjacency of the rooted tree.
func (t *Tree) children() [][]int {
	ch := make([][]int, len(t.Labels))
	for v := 1; v < len(t.Parent); v++ {
		p := t.Parent[v]
		ch[p] = append(ch[p], v)
	}
	return ch
}

// CanonicalString returns the canonical breadth-first string of the free
// tree underlying t: the tree is re-rooted at its center (for bicentral
// trees, the lexicographically smaller of the two rootings is used) and
// normalized before encoding.
func (t *Tree) CanonicalString() string {
	return CanonicalFreeTree(t.Graph())
}

// CanonicalFreeTree computes the canonical string of a free tree given as a
// graph. It panics if g is not a tree (connected, |E| = |V|-1).
func CanonicalFreeTree(g *graph.Graph) string {
	if g.NumEdges() != g.NumVertices()-1 || !g.IsConnected() {
		panic("treemine: CanonicalFreeTree on non-tree")
	}
	centers := treeCenters(g)
	best := ""
	for _, c := range centers {
		s := encodeRooted(g, c)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// treeCenters returns the 1 or 2 centers of the tree by iterative leaf
// peeling.
func treeCenters(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	if n == 1 {
		return []graph.VertexID{0}
	}
	deg := make([]int, n)
	removed := make([]bool, n)
	var leaves []graph.VertexID
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VertexID(v))
		if deg[v] <= 1 {
			leaves = append(leaves, graph.VertexID(v))
		}
	}
	remaining := n
	for remaining > 2 {
		var next []graph.VertexID
		for _, l := range leaves {
			removed[l] = true
			remaining--
			for _, w := range g.Neighbors(l) {
				if !removed[w] {
					deg[w]--
					if deg[w] == 1 {
						next = append(next, w)
					}
				}
			}
		}
		leaves = next
	}
	var centers []graph.VertexID
	for v := 0; v < n; v++ {
		if !removed[graph.VertexID(v)] {
			centers = append(centers, graph.VertexID(v))
		}
	}
	return centers
}

// encodeRooted normalizes the tree rooted at r and emits the level-order
// canonical string with '$' family separators and '#' terminator.
func encodeRooted(g *graph.Graph, r graph.VertexID) string {
	// Recursive canonical encodings drive the normalization order: a
	// subtree's encoding is its label followed by its children's encodings
	// sorted ascending. This is the bottom-up normalization of Fig 5.
	n := g.NumVertices()
	parent := make([]graph.VertexID, n)
	for i := range parent {
		parent[i] = -1
	}
	orderKey := make([]string, n)
	var canon func(v, p graph.VertexID) string
	canon = func(v, p graph.VertexID) string {
		var kids []string
		for _, w := range g.Neighbors(v) {
			if w != p {
				parent[w] = v
				kids = append(kids, canon(w, v))
			}
		}
		sort.Strings(kids)
		var b strings.Builder
		b.WriteString(g.Label(v))
		b.WriteByte('(')
		for _, k := range kids {
			b.WriteString(k)
		}
		b.WriteByte(')')
		orderKey[v] = b.String()
		return orderKey[v]
	}
	canon(r, -1)

	// Level-order scan of the normalized tree: children of each visited
	// vertex sorted by canonical key form one sibling family.
	var out strings.Builder
	out.WriteString(g.Label(r))
	queue := []graph.VertexID{r}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		var kids []graph.VertexID
		for _, w := range g.Neighbors(v) {
			if parent[w] == v {
				kids = append(kids, w)
			}
		}
		if len(kids) == 0 {
			continue
		}
		sort.Slice(kids, func(i, j int) bool { return orderKey[kids[i]] < orderKey[kids[j]] })
		out.WriteByte('$')
		for _, k := range kids {
			out.WriteString("1") // edge label (uniform "1" in this data model)
			out.WriteString(g.Label(k))
			queue = append(queue, k)
		}
	}
	out.WriteByte('#')
	return out.String()
}
