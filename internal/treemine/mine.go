package treemine

import (
	"context"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/subiso"
)

// FrequentTree is a mined frequent free tree with its support information.
type FrequentTree struct {
	Pattern *graph.Graph // the tree as a graph pattern
	Canon   string       // canonical string identity
	Support []int        // indices (positions in the mined DB) of graphs containing it
}

// Frequency returns the relative support of the tree in a database of the
// given size.
func (f *FrequentTree) Frequency(dbSize int) float64 {
	if dbSize == 0 {
		return 0
	}
	return float64(len(f.Support)) / float64(dbSize)
}

// MineOptions configures frequent subtree mining.
type MineOptions struct {
	// MinSupport is the minimum relative support (min_fr in the paper),
	// e.g. 0.1 for 10%.
	MinSupport float64
	// MaxEdges caps the size of mined trees. Frequent subtrees are used as
	// clustering features, where small trees carry most of the signal
	// (footnote 8: "frequent subtrees describe crucial topology of graphs
	// but demand lower computational cost"). Default 4.
	MaxEdges int
	// MaxTrees caps the total number of trees returned (0 = unlimited).
	// When hit, the largest-support trees of each size are kept.
	MaxTrees int
}

func (o *MineOptions) defaults() {
	if o.MaxEdges <= 0 {
		o.MaxEdges = 4
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 0.1
	}
}

// Mine enumerates frequent free subtrees of db by pattern growth (Chi et
// al. style): frequent single edges are grown one leaf at a time, with
// canonical-string deduplication and anti-monotone support pruning (a
// child's support is counted only within its parent's supporting graphs).
//
// Deprecated: use MineCtx. This wrapper predates PR 1's context plumbing:
// it runs uncancellable and reports to no pipeline trace.
func Mine(db *graph.DB, opts MineOptions) []*FrequentTree {
	// context.Background is never cancelled, so MineCtx cannot fail here.
	trees, _ := MineCtx(context.Background(), db, opts)
	return trees
}

// MineCtx is Mine with cooperative cancellation and tracing: the pattern
// growth checks ctx between parent trees and returns ctx.Err() cleanly
// (no partial result), and the run is reported to the context's pipeline
// tracer as StageMine with CounterTreesMined.
func MineCtx(ctx context.Context, db *graph.DB, opts MineOptions) ([]*FrequentTree, error) {
	done := pipeline.StartStage(ctx, pipeline.StageMine)
	defer done()
	trees, err := mine(ctx, db, opts)
	if err != nil {
		return nil, err
	}
	pipeline.From(ctx).Add(pipeline.CounterTreesMined, int64(len(trees)))
	return trees, nil
}

func mine(ctx context.Context, db *graph.DB, opts MineOptions) ([]*FrequentTree, error) {
	opts.defaults()
	minCount := int(opts.MinSupport*float64(db.Len()) + 0.999999)
	if minCount < 1 {
		minCount = 1
	}

	// Level 1: frequent single-edge trees keyed by canonical edge label.
	type seed struct {
		a, b    string
		support []int
	}
	seedMap := make(map[string]*seed)
	for gi, g := range db.Graphs {
		seen := make(map[string]bool)
		for _, e := range g.Edges() {
			la, lb := g.Label(e.U), g.Label(e.V)
			if la > lb {
				la, lb = lb, la
			}
			key := la + "\x00" + lb
			if seen[key] {
				continue
			}
			seen[key] = true
			s, ok := seedMap[key]
			if !ok {
				s = &seed{a: la, b: lb}
				seedMap[key] = s
			}
			s.support = append(s.support, gi)
		}
	}

	// Global frequent vertex labels, used to propose leaf extensions.
	labelCount := make(map[string]int)
	for _, g := range db.Graphs {
		seen := make(map[string]bool)
		for v := 0; v < g.NumVertices(); v++ {
			l := g.Label(graph.VertexID(v))
			if !seen[l] {
				seen[l] = true
				labelCount[l]++
			}
		}
	}
	var freqLabels []string
	for l, c := range labelCount {
		if c >= minCount {
			freqLabels = append(freqLabels, l)
		}
	}
	sort.Strings(freqLabels)

	var level []*FrequentTree
	seenCanon := make(map[string]bool)
	for _, s := range seedMap {
		if len(s.support) < minCount {
			continue
		}
		g := graph.New(2, 1)
		u := g.AddVertex(s.a)
		v := g.AddVertex(s.b)
		g.MustAddEdge(u, v)
		c := CanonicalFreeTree(g)
		if seenCanon[c] {
			continue
		}
		seenCanon[c] = true
		level = append(level, &FrequentTree{Pattern: g, Canon: c, Support: s.support})
	}
	sortTrees(level)
	all := append([]*FrequentTree(nil), level...)

	// Pattern growth: attach one new leaf with a frequent label to every
	// vertex of every frequent tree of the previous level.
	for size := 2; size <= opts.MaxEdges && len(level) > 0; size++ {
		var next []*FrequentTree
		for _, ft := range level {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for attach := 0; attach < ft.Pattern.NumVertices(); attach++ {
				for _, nl := range freqLabels {
					cand := ft.Pattern.Clone()
					nv := cand.AddVertex(nl)
					cand.MustAddEdge(graph.VertexID(attach), nv)
					c := CanonicalFreeTree(cand)
					if seenCanon[c] {
						continue
					}
					seenCanon[c] = true
					var sup []int
					for _, gi := range ft.Support {
						if subiso.Contains(db.Graph(gi), cand) {
							sup = append(sup, gi)
						}
					}
					if len(sup) >= minCount {
						next = append(next, &FrequentTree{Pattern: cand, Canon: c, Support: sup})
					}
				}
			}
		}
		sortTrees(next)
		if opts.MaxTrees > 0 && len(next) > opts.MaxTrees {
			next = next[:opts.MaxTrees]
		}
		all = append(all, next...)
		level = next
	}

	if opts.MaxTrees > 0 && len(all) > opts.MaxTrees {
		// Keep the highest-support trees overall but preserve size mix by
		// stable support-descending order.
		sortTrees(all)
		all = all[:opts.MaxTrees]
	}
	return all, ctx.Err()
}

// sortTrees orders by support descending, then canon ascending for
// determinism.
func sortTrees(ts []*FrequentTree) {
	sort.Slice(ts, func(i, j int) bool {
		if len(ts[i].Support) != len(ts[j].Support) {
			return len(ts[i].Support) > len(ts[j].Support)
		}
		return ts[i].Canon < ts[j].Canon
	})
}

// RecountCtx recomputes every tree's support over db and drops trees
// below minSupport, with cooperative cancellation checked between trees
// (each tree costs one VF2 containment test per database graph). Used by
// the eager-sampling pipeline (Sec 4.3): trees are mined on a sample at a
// lowered threshold low_fr, then verified against the full database at
// the original threshold min_fr.
func RecountCtx(ctx context.Context, db *graph.DB, trees []*FrequentTree, minSupport float64) ([]*FrequentTree, error) {
	minCount := int(minSupport*float64(db.Len()) + 0.999999)
	if minCount < 1 {
		minCount = 1
	}
	var out []*FrequentTree
	for _, t := range trees {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var sup []int
		for gi, g := range db.Graphs {
			if subiso.Contains(g, t.Pattern) {
				sup = append(sup, gi)
			}
		}
		if len(sup) >= minCount {
			out = append(out, &FrequentTree{Pattern: t.Pattern, Canon: t.Canon, Support: sup})
		}
	}
	sortTrees(out)
	return out, nil
}

// FeatureVectors builds the |Tsel|-dimensional binary feature vector of
// every graph in db (Algorithm 2, lines 3-10): bit j is set iff the graph
// contains tree j. Support lists recorded during mining accelerate the
// common case where db is the mined database itself; containment is
// verified with VF2 otherwise.
func FeatureVectors(db *graph.DB, sel []*FrequentTree) [][]bool {
	vecs, _ := FeatureVectorsCtx(context.Background(), db, sel)
	return vecs
}

// FeatureVectorsCtx is FeatureVectors with cooperative cancellation: the
// parallel per-graph loop stops claiming graphs once ctx is cancelled.
func FeatureVectorsCtx(ctx context.Context, db *graph.DB, sel []*FrequentTree) ([][]bool, error) {
	vecs := make([][]bool, db.Len())
	err := par.ForCtx(ctx, db.Len(), func(i int) {
		vecs[i] = make([]bool, len(sel))
		g := db.Graph(i)
		for j, ft := range sel {
			vecs[i][j] = subiso.Contains(g, ft.Pattern)
		}
	})
	if err != nil {
		return nil, err
	}
	return vecs, nil
}
