package treemine

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/subiso"
)

// recountT runs RecountCtx under a background context, failing the test
// on error.
func recountT(t *testing.T, db *graph.DB, trees []*FrequentTree, minSupport float64) []*FrequentTree {
	t.Helper()
	out, err := RecountCtx(context.Background(), db, trees, minSupport)
	if err != nil {
		t.Fatalf("RecountCtx: %v", err)
	}
	return out
}

func TestRecountVerifiesSupports(t *testing.T) {
	db := miningDB()
	// Mine on a biased "sample" (just the first two graphs) at a low
	// threshold, then recount on the full database.
	sample := graph.NewDB("sample", []*graph.Graph{db.Graph(0).Clone(), db.Graph(1).Clone()})
	mined := Mine(sample, MineOptions{MinSupport: 0.4, MaxEdges: 2})
	if len(mined) == 0 {
		t.Fatal("nothing mined from sample")
	}
	verified := recountT(t, db, mined, 0.5)
	for _, ft := range verified {
		if len(ft.Support) < 3 { // 0.5 × 6 = 3
			t.Errorf("tree %s survived recount with support %d", ft.Canon, len(ft.Support))
		}
		// Supports must be exact against the full database.
		for gi := 0; gi < db.Len(); gi++ {
			want := subiso.Contains(db.Graph(gi), ft.Pattern)
			got := containsIdx(ft.Support, gi)
			if want != got {
				t.Errorf("tree %s: recount support for graph %d = %v, want %v", ft.Canon, gi, got, want)
			}
		}
	}
}

func TestRecountDropsInfrequent(t *testing.T) {
	db := miningDB()
	// A tree frequent only in a sample: S-C-O path occurs in 3/6 graphs
	// (the two stars and the C-O-S path); at min 0.9 recount drops it.
	mined := Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 2})
	verified := recountT(t, db, mined, 0.9)
	for _, ft := range verified {
		if ft.Frequency(db.Len()) < 0.9 {
			t.Errorf("tree %s kept below threshold: %v", ft.Canon, ft.Frequency(db.Len()))
		}
	}
	if len(verified) >= len(mined) {
		t.Error("recount at a stricter threshold should drop trees")
	}
}

func TestRecountEmpty(t *testing.T) {
	db := miningDB()
	if out := recountT(t, db, nil, 0.5); len(out) != 0 {
		t.Errorf("recount of nothing returned %d trees", len(out))
	}
}
