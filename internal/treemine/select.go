package treemine

// Feature selection over mined subtrees (Algorithm 2 line 2, Appendix B).
//
// A set of frequent subtrees often contains many near-duplicates. The paper
// refines it by maximizing the monotone submodular facility-location
// function
//
//	q(Tsel) = Σ_{i∈Tall} max_{j∈Tsel} σsubtree(i, j)
//
// with greedy search, which guarantees a (1 - 1/e) approximation. The
// subtree similarity is σsubtree(i,j) = |lcs(i,j)| / max(|i|,|j|) over
// canonical strings.

// SubtreeSimilarity returns σsubtree of two canonical strings.
func SubtreeSimilarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return float64(lcsLength(a, b)) / float64(m)
}

// lcsLength computes the longest-common-subsequence length of two strings
// with the O(len(a)·len(b)) dynamic program using two rolling rows.
func lcsLength(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SelectFeatures greedily picks at most k trees from all maximizing the
// facility-location objective. If k <= 0 or k >= len(all), all trees are
// returned. The greedy loop stops early once the marginal gain drops to
// zero (every remaining tree is already perfectly represented).
func SelectFeatures(all []*FrequentTree, k int) []*FrequentTree {
	if k <= 0 || k >= len(all) {
		return all
	}
	n := len(all)
	// Pairwise similarities; n is small (tens to low hundreds).
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i == j {
				sim[i][j] = 1
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := SubtreeSimilarity(all[i].Canon, all[j].Canon)
			sim[i][j] = s
			sim[j][i] = s
		}
	}

	best := make([]float64, n) // current max similarity of each tree to Tsel
	chosen := make([]bool, n)
	var sel []*FrequentTree
	for len(sel) < k {
		bestGain := 0.0
		bestIdx := -1
		for cand := 0; cand < n; cand++ {
			if chosen[cand] {
				continue
			}
			gain := 0.0
			for i := 0; i < n; i++ {
				if d := sim[i][cand] - best[i]; d > 0 {
					gain += d
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = cand
			}
		}
		if bestIdx < 0 {
			break // zero marginal gain everywhere
		}
		chosen[bestIdx] = true
		sel = append(sel, all[bestIdx])
		for i := 0; i < n; i++ {
			if sim[i][bestIdx] > best[i] {
				best[i] = sim[i][bestIdx]
			}
		}
	}
	return sel
}

// Coverage evaluates q(Tsel)/|Tall|, the normalized facility-location
// objective, useful for diagnostics and tests.
func Coverage(all, sel []*FrequentTree) float64 {
	if len(all) == 0 {
		return 0
	}
	total := 0.0
	for _, t := range all {
		best := 0.0
		for _, s := range sel {
			if v := SubtreeSimilarity(t.Canon, s.Canon); v > best {
				best = v
			}
		}
		total += best
	}
	return total / float64(len(all))
}
