package treemine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/subiso"
)

func pathGraph(labels ...string) *graph.Graph {
	g := graph.New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(graph.VertexID(i-1), graph.VertexID(i))
	}
	return g
}

func star(center string, leaves ...string) *graph.Graph {
	g := graph.New(len(leaves)+1, len(leaves))
	c := g.AddVertex(center)
	for _, l := range leaves {
		v := g.AddVertex(l)
		g.MustAddEdge(c, v)
	}
	return g
}

func TestCanonicalSingleVertex(t *testing.T) {
	g := graph.New(1, 0)
	g.AddVertex("A")
	c := CanonicalFreeTree(g)
	if c != "A#" {
		t.Errorf("canonical of singleton = %q, want A#", c)
	}
}

func TestCanonicalInvariantUnderVertexOrder(t *testing.T) {
	// The same labeled path built in two vertex orders.
	a := pathGraph("C", "O", "N")
	b := graph.New(3, 2)
	n := b.AddVertex("N")
	o := b.AddVertex("O")
	c := b.AddVertex("C")
	b.MustAddEdge(o, n)
	b.MustAddEdge(o, c)
	if CanonicalFreeTree(a) != CanonicalFreeTree(b) {
		t.Errorf("isomorphic trees have different canonical strings:\n%q\n%q",
			CanonicalFreeTree(a), CanonicalFreeTree(b))
	}
}

func TestCanonicalDistinguishesTrees(t *testing.T) {
	p := pathGraph("C", "C", "C", "C") // path of 4
	s := star("C", "C", "C", "C")      // star K1,3
	if CanonicalFreeTree(p) == CanonicalFreeTree(s) {
		t.Error("path and star share a canonical string")
	}
	l1 := pathGraph("C", "O", "N")
	l2 := pathGraph("C", "N", "O") // different middle vertex
	if CanonicalFreeTree(l1) == CanonicalFreeTree(l2) {
		t.Error("differently labeled paths share a canonical string")
	}
}

func TestCanonicalFormatMarkers(t *testing.T) {
	s := star("A", "B", "B")
	c := CanonicalFreeTree(s)
	if !strings.HasSuffix(c, "#") {
		t.Errorf("canonical string %q missing terminator", c)
	}
	if !strings.Contains(c, "$") {
		t.Errorf("canonical string %q missing family separator", c)
	}
	if !strings.Contains(c, "1B") {
		t.Errorf("canonical string %q missing edge-label prefixes", c)
	}
}

func TestCanonicalBicentralTree(t *testing.T) {
	// A path with even vertices has two centers; canonical string must
	// still be invariant under relabeling of vertex IDs.
	a := pathGraph("C", "O", "O", "N")
	b := pathGraph("N", "O", "O", "C") // reversed
	if CanonicalFreeTree(a) != CanonicalFreeTree(b) {
		t.Error("bicentral canonical differs under reversal")
	}
}

func TestCanonicalRandomPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 8)
		perm := r.Perm(tr.NumVertices())
		h := graph.New(tr.NumVertices(), tr.NumEdges())
		labels := make([]string, tr.NumVertices())
		for v := 0; v < tr.NumVertices(); v++ {
			labels[perm[v]] = tr.Label(graph.VertexID(v))
		}
		for _, l := range labels {
			h.AddVertex(l)
		}
		for _, e := range tr.Edges() {
			h.MustAddEdge(graph.VertexID(perm[e.U]), graph.VertexID(perm[e.V]))
		}
		return CanonicalFreeTree(tr) == CanonicalFreeTree(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalPanicsOnNonTree(t *testing.T) {
	tri := graph.New(3, 3)
	a := tri.AddVertex("C")
	b := tri.AddVertex("C")
	c := tri.AddVertex("C")
	tri.MustAddEdge(a, b)
	tri.MustAddEdge(b, c)
	tri.MustAddEdge(c, a)
	defer func() {
		if recover() == nil {
			t.Error("no panic on cyclic input")
		}
	}()
	CanonicalFreeTree(tri)
}

func TestTreeCenters(t *testing.T) {
	p5 := pathGraph("A", "B", "C", "D", "E")
	cs := treeCenters(p5)
	if len(cs) != 1 || cs[0] != 2 {
		t.Errorf("path-5 centers = %v, want [2]", cs)
	}
	p4 := pathGraph("A", "B", "C", "D")
	cs = treeCenters(p4)
	if len(cs) != 2 {
		t.Errorf("path-4 centers = %v, want two", cs)
	}
}

func TestTreeStructConversion(t *testing.T) {
	tr := &Tree{Labels: []string{"A", "B", "C"}, Parent: []int{-1, 0, 0}}
	g := tr.Graph()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("conversion wrong: %v", g)
	}
	if tr.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", tr.NumEdges())
	}
	if tr.CanonicalString() != CanonicalFreeTree(g) {
		t.Error("Tree.CanonicalString disagrees with graph encoding")
	}
}

func miningDB() *graph.DB {
	// 6 graphs; C-O edge in all, C-N in half, star C(O,N,S) in two.
	gs := []*graph.Graph{
		pathGraph("C", "O"),
		pathGraph("C", "O", "N"),
		pathGraph("N", "C", "O"),
		star("C", "O", "N", "S"),
		star("C", "O", "N", "S"),
		pathGraph("C", "O", "S"),
	}
	return graph.NewDB("mine", gs)
}

func TestMineFindsFrequentEdge(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.9, MaxEdges: 3})
	if len(trees) != 1 {
		t.Fatalf("support 0.9 should yield only C-O, got %d trees", len(trees))
	}
	ft := trees[0]
	if len(ft.Support) != 6 {
		t.Errorf("C-O support = %d, want 6", len(ft.Support))
	}
	if ft.Frequency(db.Len()) != 1.0 {
		t.Errorf("frequency = %v, want 1", ft.Frequency(db.Len()))
	}
}

func TestMineSupportsAreSound(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.3, MaxEdges: 3})
	if len(trees) == 0 {
		t.Fatal("no trees mined")
	}
	for _, ft := range trees {
		// Trees must actually be trees.
		if ft.Pattern.NumEdges() != ft.Pattern.NumVertices()-1 || !ft.Pattern.IsConnected() {
			t.Fatalf("mined pattern is not a tree: %v", ft.Pattern)
		}
		// Reported support must match VF2 ground truth.
		for gi := 0; gi < db.Len(); gi++ {
			want := subiso.Contains(db.Graph(gi), ft.Pattern)
			got := containsIdx(ft.Support, gi)
			if want != got {
				t.Errorf("tree %s: support of graph %d = %v, want %v", ft.Canon, gi, got, want)
			}
		}
	}
}

func containsIdx(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func TestMineAntiMonotone(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.3, MaxEdges: 4})
	bySize := map[int]int{}
	for _, ft := range trees {
		bySize[ft.Pattern.NumEdges()]++
		// Every mined tree must meet min support.
		if len(ft.Support) < 2 { // 0.3 * 6 = 1.8 → minCount 2
			t.Errorf("tree %s support %d below threshold", ft.Canon, len(ft.Support))
		}
	}
	if bySize[1] == 0 {
		t.Error("no single-edge trees mined")
	}
}

func TestMineNoDuplicateCanon(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 3})
	seen := map[string]bool{}
	for _, ft := range trees {
		if seen[ft.Canon] {
			t.Errorf("duplicate canonical tree %s", ft.Canon)
		}
		seen[ft.Canon] = true
	}
}

func TestMineMaxTreesCap(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 3, MaxTrees: 3})
	if len(trees) > 3 {
		t.Errorf("MaxTrees not honored: %d", len(trees))
	}
}

func TestFeatureVectors(t *testing.T) {
	db := miningDB()
	trees := Mine(db, MineOptions{MinSupport: 0.5, MaxEdges: 2})
	vecs := FeatureVectors(db, trees)
	if len(vecs) != db.Len() {
		t.Fatalf("vector count = %d", len(vecs))
	}
	for i, vec := range vecs {
		for j, bit := range vec {
			want := subiso.Contains(db.Graph(i), trees[j].Pattern)
			if bit != want {
				t.Errorf("vec[%d][%d] = %v, want %v", i, j, bit, want)
			}
		}
	}
}

func TestLCSLength(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abc", "abc", 3},
		{"abc", "axbxc", 3},
		{"abcdef", "acf", 3},
		{"xyz", "abc", 0},
	}
	for _, tc := range cases {
		if got := lcsLength(tc.a, tc.b); got != tc.want {
			t.Errorf("lcs(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSubtreeSimilarityRange(t *testing.T) {
	if s := SubtreeSimilarity("A$1B#", "A$1B#"); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if s := SubtreeSimilarity("", ""); s != 1 {
		t.Errorf("empty-empty similarity = %v", s)
	}
	s := SubtreeSimilarity("A$1B#", "C$1D#")
	if s < 0 || s > 1 {
		t.Errorf("similarity out of range: %v", s)
	}
}

func TestSelectFeaturesGreedy(t *testing.T) {
	db := miningDB()
	all := Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 3})
	if len(all) < 4 {
		t.Skipf("too few trees (%d) for a meaningful selection test", len(all))
	}
	sel := SelectFeatures(all, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	// Selection must be a subset of all.
	canon := map[string]bool{}
	for _, ft := range all {
		canon[ft.Canon] = true
	}
	for _, ft := range sel {
		if !canon[ft.Canon] {
			t.Errorf("selected tree %s not in candidate set", ft.Canon)
		}
	}
	// Greedy facility location should beat an arbitrary same-size prefix in
	// coverage (or at least match it).
	if Coverage(all, sel) < Coverage(all, all[:3])-1e-9 {
		t.Error("greedy selection covered less than naive prefix")
	}
}

func TestSelectFeaturesEdgeCases(t *testing.T) {
	db := miningDB()
	all := Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 2})
	if got := SelectFeatures(all, 0); len(got) != len(all) {
		t.Error("k<=0 should return all")
	}
	if got := SelectFeatures(all, len(all)+5); len(got) != len(all) {
		t.Error("k>=n should return all")
	}
	if Coverage(nil, nil) != 0 {
		t.Error("Coverage on empty all should be 0")
	}
}

func randomTree(r *rand.Rand, n int) *graph.Graph {
	labels := []string{"C", "N", "O", "S"}
	g := graph.New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.VertexID(r.Intn(i)), graph.VertexID(i))
	}
	return g
}

func BenchmarkCanonicalFreeTree(b *testing.B) {
	r := rand.New(rand.NewSource(21))
	tr := randomTree(r, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CanonicalFreeTree(tr)
	}
}

func BenchmarkMine(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	var gs []*graph.Graph
	for i := 0; i < 50; i++ {
		gs = append(gs, randomTree(r, 10))
	}
	db := graph.NewDB("bench", gs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(db, MineOptions{MinSupport: 0.2, MaxEdges: 3})
	}
}
