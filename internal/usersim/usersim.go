// Package usersim simulates the human participants of the paper's user
// studies (Exp 4: query formulation time; Exp 10: cognitive-load response
// time). Real subjects are unavailable to a reproduction, so both studies
// substitute a seeded stochastic user model whose structure embeds the
// paper's empirical findings: formulation time is dominated by the number
// of steps plus a pattern-search overhead growing with the displayed
// patterns' total cognitive load, and pattern-comprehension time grows
// with the density-based load measure F1 (Sec 3.2, Exp 10). The model's
// purpose is to preserve the *shape* of the results, not to claim
// human-subject numbers.
package usersim

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/queryform"
)

// User is a simulated study participant.
type User struct {
	rng *rand.Rand
	// per-action base times in seconds; randomized per user around the
	// defaults to model skill differences.
	dragTime    float64 // drag a canned pattern onto the canvas
	vertexTime  float64 // add one vertex
	edgeTime    float64 // add one edge
	relabelTime float64 // relabel one vertex
	scanRate    float64 // seconds per unit of panel cognitive load scanned
}

// NewUser creates a participant with speed parameters jittered around the
// defaults (±30%).
func NewUser(seed int64) *User {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(base float64) float64 { return base * (0.7 + 0.6*rng.Float64()) }
	return &User{
		rng:         rng,
		dragTime:    jitter(2.5),
		vertexTime:  jitter(1.5),
		edgeTime:    jitter(2.0),
		relabelTime: jitter(1.2),
		scanRate:    jitter(0.25),
	}
}

// FormulationResult is one simulated query-formulation trial.
type FormulationResult struct {
	Steps   int     // steps taken (paper's "steps taken" in Fig 10)
	Seconds float64 // query formulation time (QFT)
}

// Formulate simulates constructing query q with the given pattern panel.
// unlabeled selects the commercial-GUI cost model where pattern vertices
// must be relabeled after each drag.
func (u *User) Formulate(q *graph.Graph, panel []*graph.Graph, unlabeled bool) FormulationResult {
	var r queryform.StepResult
	if unlabeled {
		r = queryform.StepsUnlabeled(q, panel)
	} else {
		r = queryform.Steps(q, panel)
	}

	// Panel scan cost: before each pattern use the participant visually
	// searches the panel; scanning time grows with the total cognitive
	// load of displayed patterns (Sec 3.1: users "search a long list of
	// these patterns").
	panelLoad := 0.0
	for _, p := range panel {
		panelLoad += p.CognitiveLoad()
	}
	searchTime := float64(r.PatternsUsed) * u.scanRate * panelLoad

	// Step execution time. StepP counts pattern drags, vertex adds, edge
	// adds and relabels; the step model reports the relabel count exactly.
	drags := r.PatternsUsed
	relabels := r.Relabels
	remaining := r.StepP - drags - relabels
	if remaining < 0 {
		remaining = 0
	}
	// Split the remaining steps between vertex and edge additions using
	// the query's vertex/edge ratio.
	vFrac := float64(q.NumVertices()) / float64(q.NumVertices()+q.NumEdges())
	vSteps := int(float64(remaining) * vFrac)
	eSteps := remaining - vSteps

	t := searchTime +
		float64(drags)*u.dragTime +
		float64(relabels)*u.relabelTime +
		float64(vSteps)*u.vertexTime +
		float64(eSteps)*u.edgeTime
	// Per-trial noise (±10%).
	t *= 0.9 + 0.2*u.rng.Float64()
	return FormulationResult{Steps: r.StepP, Seconds: t}
}

// ---------------------------------------------------------------------------
// Exp 10: cognitive-load response model.

// ComprehensionTime simulates the time (seconds) a participant takes to
// decide whether pattern p is useful for formulating a query. Decision
// time grows with the density-based cognitive load F1 = |Ep|·ρp — the
// paper's empirically best measure — plus participant noise.
func (u *User) ComprehensionTime(p *graph.Graph) float64 {
	f1 := p.CognitiveLoad()
	base := 2.0 + 1.8*f1
	return base * (0.85 + 0.3*u.rng.Float64())
}

// AcceptsSuggestion simulates the accept-or-ignore decision on a
// top-ranked autocompletion suggestion offering pattern p. baseProb is
// the harness's configured acceptance rate; the draw is biased down by
// the pattern's cognitive load — hard-to-read patterns get ignored more
// often, the Exp 10 finding — and comes from the user's seeded stream so
// replays are reproducible.
func (u *User) AcceptsSuggestion(p *graph.Graph, baseProb float64) bool {
	if baseProb <= 0 || p == nil {
		return false
	}
	prob := baseProb / (1 + 0.15*p.CognitiveLoad())
	return u.rng.Float64() < prob
}

// F1 is the density-based cognitive load measure (Sec 3.2).
func F1(p *graph.Graph) float64 { return p.CognitiveLoad() }

// F2 is the degree-based measure Σ deg(v) = 2|Ep| (Exp 10).
func F2(p *graph.Graph) float64 { return 2 * float64(p.NumEdges()) }

// F3 is the average-degree measure 2|Ep|/|Vp| (Exp 10).
func F3(p *graph.Graph) float64 {
	if p.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(p.NumEdges()) / float64(p.NumVertices())
}
