package usersim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

func pathGraph(labels ...string) *graph.Graph {
	g := graph.New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(graph.VertexID(i-1), graph.VertexID(i))
	}
	return g
}

func ring(n int, label string) *graph.Graph {
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddVertex(label)
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New(n, n*(n-1)/2)
	for i := 0; i < n; i++ {
		g.AddVertex("C")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return g
}

func TestFormulateDeterministicPerSeed(t *testing.T) {
	q := ring(6, "C")
	panel := []*graph.Graph{pathGraph("C", "C", "C")}
	a := NewUser(5).Formulate(q, panel, false)
	b := NewUser(5).Formulate(q, panel, false)
	if a != b {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestFormulatePatternsReduceTime(t *testing.T) {
	q := ring(6, "C")
	good := []*graph.Graph{ring(6, "C")}
	// Average over users to wash out jitter.
	var withP, without float64
	const users = 20
	for s := int64(0); s < users; s++ {
		withP += NewUser(s).Formulate(q, good, false).Seconds
		without += NewUser(s).Formulate(q, nil, false).Seconds
	}
	if withP >= without {
		t.Errorf("patterns did not reduce mean QFT: %v vs %v", withP/users, without/users)
	}
}

func TestFormulateStepsMatchModel(t *testing.T) {
	q := ring(6, "C")
	panel := []*graph.Graph{ring(6, "C")}
	r := NewUser(1).Formulate(q, panel, false)
	if r.Steps != 1 {
		t.Errorf("Steps = %d, want 1 (single drag)", r.Steps)
	}
	if r.Seconds <= 0 {
		t.Errorf("Seconds = %v, want positive", r.Seconds)
	}
}

func TestFormulateUnlabeledSlower(t *testing.T) {
	q := ring(6, "C")
	labeled := []*graph.Graph{ring(6, "C")}
	unlabeled := []*graph.Graph{ring(6, "*")}
	var lab, unl float64
	const users = 20
	for s := int64(0); s < users; s++ {
		lab += NewUser(s).Formulate(q, labeled, false).Seconds
		unl += NewUser(s).Formulate(q, unlabeled, true).Seconds
	}
	if unl <= lab {
		t.Errorf("unlabeled GUI should be slower on average: %v vs %v", unl/users, lab/users)
	}
}

func TestCognitiveMeasures(t *testing.T) {
	p := pathGraph("C", "C", "C") // |V|=3 |E|=2: F1 = 2·(4/6)=4/3, F2=4, F3=4/3
	if got := F1(p); !closeF(got, 4.0/3.0) {
		t.Errorf("F1 = %v", got)
	}
	if got := F2(p); got != 4 {
		t.Errorf("F2 = %v", got)
	}
	if got := F3(p); !closeF(got, 4.0/3.0) {
		t.Errorf("F3 = %v", got)
	}
	empty := graph.New(0, 0)
	if F3(empty) != 0 {
		t.Error("F3 of empty graph should be 0")
	}
}

func TestComprehensionTimeGrowsWithDensity(t *testing.T) {
	sparse := pathGraph("C", "C", "C", "C", "C")
	dense := clique(4)
	var ts, td float64
	const users = 30
	for s := int64(0); s < users; s++ {
		u := NewUser(s)
		ts += u.ComprehensionTime(sparse)
		td += u.ComprehensionTime(dense)
	}
	if td <= ts {
		t.Errorf("clique should take longer than path: %v vs %v", td/users, ts/users)
	}
}

// TestF1RanksBestAgainstSimulatedTimes reproduces the core of Exp 10 in
// miniature: F1's ranking of patterns should correlate with simulated
// response times at least as well as F2's.
func TestF1RanksBestAgainstSimulatedTimes(t *testing.T) {
	patterns := []*graph.Graph{
		pathGraph("C", "C", "C", "C"),
		ring(4, "C"),
		ring(6, "C"),
		clique(4),
		pathGraph("C", "O", "N", "S", "C", "C"),
		clique(5),
	}
	var avgTimes []float64
	for _, p := range patterns {
		total := 0.0
		for s := int64(0); s < 15; s++ {
			total += NewUser(s).ComprehensionTime(p)
		}
		avgTimes = append(avgTimes, total/15)
	}
	f1s := make([]float64, len(patterns))
	f2s := make([]float64, len(patterns))
	for i, p := range patterns {
		f1s[i] = F1(p)
		f2s[i] = F2(p)
	}
	tau1 := stats.KendallTau(stats.Ranks(avgTimes), stats.Ranks(f1s))
	tau2 := stats.KendallTau(stats.Ranks(avgTimes), stats.Ranks(f2s))
	if tau1 < tau2 {
		t.Errorf("F1 tau (%v) should be >= F2 tau (%v)", tau1, tau2)
	}
	if tau1 < 0.5 {
		t.Errorf("F1 tau = %v, want strong correlation", tau1)
	}
}

func closeF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
