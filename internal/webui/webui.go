// Package webui serves a minimal visual-graph-query-style pattern panel
// over HTTP: the canned patterns selected by CATAPULT rendered as SVG
// cards with their score breakdowns, plus JSON and DOT endpoints for
// downstream tooling, and — via EnableObservability — the operational
// endpoints of a long-lived pattern service (/metrics, /healthz,
// /debug/pprof/*). cmd/guiserve wires it to a database.
package webui

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/suggest"
)

// PatternView is the JSON projection of a selected pattern.
type PatternView struct {
	Index    int     `json:"index"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Score    float64 `json:"score"`
	Ccov     float64 `json:"ccov"`
	Lcov     float64 `json:"lcov"`
	Div      float64 `json:"div"`
	Cog      float64 `json:"cog"`
	Text     string  `json:"text"`
}

// Server exposes a selected pattern set, and optionally subgraph search
// over the underlying database.
type Server struct {
	DatasetName string
	Patterns    []*core.Pattern
	index       *gindex.Index
	sugg        *suggest.Engine
	suggOpts    suggest.Options
	mux         *http.ServeMux
}

// NewServer builds the handler set for the given selection result.
func NewServer(datasetName string, patterns []*core.Pattern) *Server {
	s := &Server{DatasetName: datasetName, Patterns: patterns, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", readOnly(s.handleIndex))
	s.mux.HandleFunc("/pattern/", readOnly(s.handlePattern))
	s.mux.HandleFunc("/api/patterns.json", readOnly(s.handleJSON))
	s.mux.HandleFunc("/api/search", s.handleSearch)
	s.mux.HandleFunc("/api/suggest", s.handleSuggest)
	return s
}

// readOnly guards a render handler: anything but GET or HEAD answers 405
// with an Allow header instead of silently rendering (a POST to the panel
// is a client bug worth surfacing, not a page view).
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// EnableSearch attaches a subgraph-search index so POST /api/search can
// answer queries against the database the patterns were mined from.
func (s *Server) EnableSearch(idx *gindex.Index) { s.index = idx }

// EnableSuggest attaches an autocompletion engine so POST /api/suggest can
// rank the panel's patterns as completions of a partial query. opts
// configures the per-keystroke budget and defaults; the zero value adopts
// the suggest package defaults (~100ms, top 5).
func (s *Server) EnableSuggest(eng *suggest.Engine, opts suggest.Options) {
	s.sugg = eng
	s.suggOpts = opts
}

// EnableObservability mounts the operational endpoints of a long-lived
// pattern service:
//
//   - /metrics serves metricsHandler (OpenMetrics exposition of a
//     metrics.Registry),
//   - /healthz serves health() as JSON with a 200 status (the handler is
//     liveness: reachable means serving; degradation detail belongs in the
//     payload), and
//   - /debug/pprof/* serves the standard Go profiling endpoints on this
//     server's own mux — CPU profiles taken here carry the pipeline's
//     per-stage pprof labels (pipeline.WithStage), so
//     `go tool pprof -tagfocus stage=<name>` attributes samples to stages.
//
// health may be nil (the endpoint then reports only {"status":"ok"}).
func (s *Server) EnableObservability(metricsHandler http.Handler, health func() any) {
	s.mux.Handle("/metrics", metricsHandler)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var payload any = struct {
			Status string `json:"status"`
		}{"ok"}
		if health != nil {
			payload = health()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	s.mux.HandleFunc("/debug/pprof/", netpprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
}

// EnableAPI mounts the concurrent pattern-serving API (typically an
// internal/serve Server) under /v1/ on this server's mux, so one listener
// carries the human-facing panel, the operational endpoints, and the
// machine-facing serving API.
func (s *Server) EnableAPI(api http.Handler) { s.mux.Handle("/v1/", api) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>CATAPULT patterns — {{.Dataset}}</title>
<style>
body { font-family: sans-serif; margin: 2em; background: #fafafa; }
h1 { font-size: 1.3em; }
.panel { display: flex; flex-wrap: wrap; gap: 12px; }
.card { background: white; border: 1px solid #ddd; border-radius: 6px; padding: 8px; width: 180px; }
.card .meta { font-size: 0.72em; color: #555; margin-top: 4px; }
</style></head><body>
<h1>Canned pattern panel — {{.Dataset}} ({{len .Patterns}} patterns)</h1>
<p>Drag targets a visual query builder would expose; scores follow Eq 2 of the paper.</p>
<div class="panel">
{{range .Patterns}}
  <div class="card">
    <img src="/pattern/{{.Index}}.svg" width="160" height="160" alt="pattern {{.Index}}">
    <div class="meta">#{{.Index}} &middot; |V|={{.Vertices}} |E|={{.Edges}}<br>
    score={{printf "%.4f" .Score}}<br>
    ccov={{printf "%.3f" .Ccov}} lcov={{printf "%.3f" .Lcov}}<br>
    div={{printf "%.0f" .Div}} cog={{printf "%.2f" .Cog}}</div>
  </div>
{{end}}
</div>
{{if .Suggest}}<p>Autocompletion is on: POST a partial query (transaction text
format) to <code>/api/suggest</code> to rank these patterns as completions.</p>{{end}}
<p><a href="/api/patterns.json">patterns.json</a></p>
</body></html>`))

func (s *Server) views() []PatternView {
	out := make([]PatternView, len(s.Patterns))
	for i, p := range s.Patterns {
		out[i] = PatternView{
			Index:    i,
			Vertices: p.Graph.NumVertices(),
			Edges:    p.Graph.NumEdges(),
			Score:    p.Score,
			Ccov:     p.Ccov,
			Lcov:     p.Lcov,
			Div:      p.Div,
			Cog:      p.Cog,
			Text:     p.Graph.String(),
		}
	}
	return out
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var buf bytes.Buffer
	err := indexTemplate.Execute(&buf, struct {
		Dataset  string
		Patterns []PatternView
		Suggest  bool
	}{s.DatasetName, s.views(), s.sugg != nil})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// handlePattern serves /pattern/<i>.svg and /pattern/<i>.dot.
func (s *Server) handlePattern(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/pattern/")
	var (
		idx int
		ext string
		err error
	)
	switch {
	case strings.HasSuffix(rest, ".svg"):
		ext = "svg"
		idx, err = strconv.Atoi(strings.TrimSuffix(rest, ".svg"))
	case strings.HasSuffix(rest, ".dot"):
		ext = "dot"
		idx, err = strconv.Atoi(strings.TrimSuffix(rest, ".dot"))
	default:
		http.NotFound(w, r)
		return
	}
	if err != nil || idx < 0 || idx >= len(s.Patterns) {
		http.NotFound(w, r)
		return
	}
	g := s.Patterns[idx].Graph
	switch ext {
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = fmt.Fprint(w, layout.SVG(g, layout.SVGOptions{Size: 160, Seed: int64(idx)}))
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = graph.WriteDOT(w, g, fmt.Sprintf("pattern%d", idx))
	}
}

// handleSearch answers POST /api/search: the body is one query graph in
// transaction text format; the response lists matching graph indices with
// one witness embedding each.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a query graph in transaction text format", http.StatusMethodNotAllowed)
		return
	}
	if s.index == nil {
		http.Error(w, "search not enabled", http.StatusNotImplemented)
		return
	}
	qdb, err := graph.Read(io.LimitReader(r.Body, 1<<20), "query")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad query: %v", err), http.StatusBadRequest)
		return
	}
	if qdb.Len() != 1 {
		http.Error(w, fmt.Sprintf("need exactly one query graph, got %d", qdb.Len()), http.StatusBadRequest)
		return
	}
	type hit struct {
		Graph     int   `json:"graph"`
		Embedding []int `json:"embedding"`
	}
	var hits []hit
	for _, res := range s.index.Search(qdb.Graph(0)) {
		emb := make([]int, len(res.Embedding))
		for i, v := range res.Embedding {
			emb[i] = int(v)
		}
		hits = append(hits, hit{Graph: res.GraphIndex, Embedding: emb})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Matches int   `json:"matches"`
		Hits    []hit `json:"hits"`
	}{len(hits), hits})
}

// handleSuggest answers POST /api/suggest: the body is one partial query
// graph in transaction text format; the response ranks the panel's
// patterns as completions under the engine's per-keystroke budget. ?k=
// overrides the top-k per call.
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a partial query graph in transaction text format", http.StatusMethodNotAllowed)
		return
	}
	if s.sugg == nil {
		http.Error(w, "suggest not enabled", http.StatusNotImplemented)
		return
	}
	qdb, err := graph.Read(io.LimitReader(r.Body, 1<<20), "partial")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad partial query: %v", err), http.StatusBadRequest)
		return
	}
	if qdb.Len() != 1 {
		http.Error(w, fmt.Sprintf("need exactly one partial query graph, got %d", qdb.Len()), http.StatusBadRequest)
		return
	}
	opts := s.suggOpts
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil || k <= 0 {
			http.Error(w, fmt.Sprintf("bad k %q", ks), http.StatusBadRequest)
			return
		}
		opts.TopK = k
	}
	res, err := s.sugg.SuggestCtx(r.Context(), qdb.Graph(0), opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type suggView struct {
		suggest.Suggestion
		Text string `json:"text"`
	}
	views := make([]suggView, len(res.Suggestions))
	for i, sg := range res.Suggestions {
		views[i] = suggView{Suggestion: sg, Text: s.sugg.Pattern(sg.Pattern).Graph.String()}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Stats       suggest.Stats `json:"suggest"`
		Suggestions []suggView    `json:"suggestions"`
	}{res.Stats, views})
}

func (s *Server) handleJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Dataset  string        `json:"dataset"`
		Patterns []PatternView `json:"patterns"`
	}{s.DatasetName, s.views()})
}
