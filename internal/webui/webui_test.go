package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/suggest"
)

func testPatterns() []*core.Pattern {
	g1 := graph.New(3, 2)
	c := g1.AddVertex("C")
	o := g1.AddVertex("O")
	n := g1.AddVertex("N")
	g1.MustAddEdge(c, o)
	g1.MustAddEdge(o, n)
	g2 := graph.New(3, 3)
	a := g2.AddVertex("C")
	b := g2.AddVertex("C")
	d := g2.AddVertex("C")
	g2.MustAddEdge(a, b)
	g2.MustAddEdge(b, d)
	g2.MustAddEdge(d, a)
	return []*core.Pattern{
		{Graph: g1, Score: 0.5, Ccov: 0.4, Lcov: 1, Div: 1, Cog: 1.33},
		{Graph: g2, Score: 0.3, Ccov: 0.2, Lcov: 0.9, Div: 3, Cog: 3},
	}
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	s := NewServer("test-db", testPatterns())
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"test-db", "2 patterns", "/pattern/0.svg", "/pattern/1.svg", "score=0.5000"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexNotFoundForOtherPaths(t *testing.T) {
	s := NewServer("x", testPatterns())
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("status %d, want 404", rec.Code)
	}
}

func TestPatternSVG(t *testing.T) {
	s := NewServer("x", testPatterns())
	rec := get(t, s, "/pattern/0.svg")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type %q", ct)
	}
	if !strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Error("body is not SVG")
	}
}

func TestPatternDOT(t *testing.T) {
	s := NewServer("x", testPatterns())
	rec := get(t, s, "/pattern/1.dot")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "graph \"pattern1\"") {
		t.Errorf("DOT body wrong: %s", rec.Body.String())
	}
}

func TestPatternBadRequests(t *testing.T) {
	s := NewServer("x", testPatterns())
	for _, path := range []string{"/pattern/99.svg", "/pattern/-1.svg", "/pattern/abc.svg", "/pattern/0.png"} {
		if rec := get(t, s, path); rec.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, rec.Code)
		}
	}
}

func TestSearchEndpoint(t *testing.T) {
	// Database with one C-O-N path; query C-O must hit it.
	g := graph.New(3, 2)
	c := g.AddVertex("C")
	o := g.AddVertex("O")
	n := g.AddVertex("N")
	g.MustAddEdge(c, o)
	g.MustAddEdge(o, n)
	db := graph.NewDB("sdb", []*graph.Graph{g})
	idx := gindex.Build(db, gindex.Options{})

	s := NewServer("sdb", testPatterns())
	s.EnableSearch(idx)

	body := "t # 0\nv 0 C\nv 1 O\ne 0 1\n"
	req := httptest.NewRequest(http.MethodPost, "/api/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Matches int `json:"matches"`
		Hits    []struct {
			Graph     int   `json:"graph"`
			Embedding []int `json:"embedding"`
		} `json:"hits"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Matches != 1 || len(out.Hits) != 1 || out.Hits[0].Graph != 0 {
		t.Errorf("search payload wrong: %+v", out)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	s := NewServer("x", testPatterns())
	// Not enabled.
	req := httptest.NewRequest(http.MethodPost, "/api/search", strings.NewReader("t # 0\nv 0 C\n"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("disabled search: status %d", rec.Code)
	}
	// Enabled: wrong method, bad body, multiple graphs.
	db := graph.NewDB("d", []*graph.Graph{testPatterns()[0].Graph})
	s.EnableSearch(gindex.Build(db, gindex.Options{}))
	if rec := get(t, s, "/api/search"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET search: status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/api/search", strings.NewReader("garbage input"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: status %d", rec.Code)
	}
	two := "t # 0\nv 0 C\nt # 1\nv 0 C\n"
	req = httptest.NewRequest(http.MethodPost, "/api/search", strings.NewReader(two))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("two graphs: status %d", rec.Code)
	}
}

// TestErrorPaths walks the render endpoints' failure surface in one table:
// bad pattern indices, malformed DOT/SVG requests, and wrong methods — the
// render handlers are read-only and must answer 405, never 200, to writes.
func TestErrorPaths(t *testing.T) {
	s := NewServer("x", testPatterns())
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"index ok", http.MethodGet, "/", "", http.StatusOK},
		{"index HEAD ok", http.MethodHead, "/", "", http.StatusOK},
		{"index POST", http.MethodPost, "/", "x", http.StatusMethodNotAllowed},
		{"index DELETE", http.MethodDelete, "/", "", http.StatusMethodNotAllowed},
		{"json POST", http.MethodPost, "/api/patterns.json", "x", http.StatusMethodNotAllowed},
		{"json PUT", http.MethodPut, "/api/patterns.json", "x", http.StatusMethodNotAllowed},
		{"svg POST", http.MethodPost, "/pattern/0.svg", "x", http.StatusMethodNotAllowed},
		{"dot POST", http.MethodPost, "/pattern/1.dot", "x", http.StatusMethodNotAllowed},
		{"search GET", http.MethodGet, "/api/search", "", http.StatusMethodNotAllowed},
		{"suggest GET", http.MethodGet, "/api/suggest", "", http.StatusMethodNotAllowed},
		{"suggest DELETE", http.MethodDelete, "/api/suggest", "", http.StatusMethodNotAllowed},
		{"dot out of range", http.MethodGet, "/pattern/2.dot", "", http.StatusNotFound},
		{"dot negative", http.MethodGet, "/pattern/-1.dot", "", http.StatusNotFound},
		{"dot non-numeric", http.MethodGet, "/pattern/zero.dot", "", http.StatusNotFound},
		{"dot empty index", http.MethodGet, "/pattern/.dot", "", http.StatusNotFound},
		{"unknown extension", http.MethodGet, "/pattern/0.pdf", "", http.StatusNotFound},
		{"bare pattern dir", http.MethodGet, "/pattern/", "", http.StatusNotFound},
		{"svg overflow index", http.MethodGet, "/pattern/99999999999999999999.svg", "", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.body == "" {
				req = httptest.NewRequest(tc.method, tc.path, nil)
			} else {
				req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, rec.Code, tc.want)
			}
			if rec.Code == http.StatusMethodNotAllowed && rec.Header().Get("Allow") == "" {
				t.Errorf("%s %s: 405 without Allow header", tc.method, tc.path)
			}
		})
	}
}

// TestSuggestEndpoint exercises POST /api/suggest end to end: not-enabled
// answers 501, a partial query ranks the containing pattern first with its
// text attached, and bad inputs answer 400.
func TestSuggestEndpoint(t *testing.T) {
	s := NewServer("x", testPatterns())
	partial := "t # 0\nv 0 C\nv 1 O\ne 0 1\n"

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	if rec := post("/api/suggest", partial); rec.Code != http.StatusNotImplemented {
		t.Fatalf("suggest before EnableSuggest: status %d, want 501", rec.Code)
	}

	s.EnableSuggest(suggest.NewEngine(s.Patterns), suggest.Options{})
	rec := post("/api/suggest", partial)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Stats       suggest.Stats `json:"suggest"`
		Suggestions []struct {
			Pattern   int    `json:"pattern"`
			Contained bool   `json:"contained"`
			Text      string `json:"text"`
		} `json:"suggestions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json: %v\n%s", err, rec.Body.String())
	}
	if len(out.Suggestions) == 0 || out.Stats.Patterns != 2 {
		t.Fatalf("payload wrong: %+v", out)
	}
	// The C-O-N pattern contains the C-O partial; the C-triangle does not.
	if out.Suggestions[0].Pattern != 0 || !out.Suggestions[0].Contained {
		t.Errorf("top suggestion wrong: %+v", out.Suggestions[0])
	}
	if out.Suggestions[0].Text == "" {
		t.Error("suggestion missing pattern text")
	}

	// Index page advertises the endpoint once enabled.
	if body := get(t, s, "/").Body.String(); !strings.Contains(body, "/api/suggest") {
		t.Error("index page does not mention /api/suggest after EnableSuggest")
	}

	if rec := post("/api/suggest", "garbage"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", rec.Code)
	}
	if rec := post("/api/suggest?k=bad", partial); rec.Code != http.StatusBadRequest {
		t.Errorf("bad k: status %d", rec.Code)
	}
	if rec := post("/api/suggest?k=1", partial); rec.Code != http.StatusOK {
		t.Errorf("k=1: status %d", rec.Code)
	}
}

// TestEnableAPI mounts a stand-in /v1 handler and checks routing: /v1/*
// reaches the API handler, everything else still reaches the panel.
func TestEnableAPI(t *testing.T) {
	s := NewServer("x", testPatterns())
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	s.EnableAPI(api)
	if rec := get(t, s, "/v1/patterns"); rec.Code != http.StatusTeapot {
		t.Errorf("/v1/patterns did not reach the API handler: %d", rec.Code)
	}
	if rec := get(t, s, "/"); rec.Code != http.StatusOK {
		t.Errorf("panel broken after EnableAPI: %d", rec.Code)
	}
}

func TestPatternsJSON(t *testing.T) {
	s := NewServer("jsondb", testPatterns())
	rec := get(t, s, "/api/patterns.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out struct {
		Dataset  string        `json:"dataset"`
		Patterns []PatternView `json:"patterns"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if out.Dataset != "jsondb" || len(out.Patterns) != 2 {
		t.Errorf("payload wrong: %+v", out)
	}
	if out.Patterns[0].Edges != 2 || out.Patterns[1].Edges != 3 {
		t.Errorf("pattern sizes wrong: %+v", out.Patterns)
	}
}
