package catapult

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/csg"
	"repro/internal/graph"
)

// Maintainer supports incremental maintenance of canned patterns as the
// underlying database evolves — the extension the paper sketches in Sec 1
// ("it can be extended to support incremental maintenance of canned
// patterns as the underlying data graphs evolve"). New graphs are assigned
// to the existing cluster whose summary shares the most edge-label mass
// with them (a cheap proxy for MCCS similarity); affected CSGs are rebuilt
// and pattern selection — the cheap phase relative to clustering — is
// rerun. Full reclustering happens only when a cluster outgrows the fine
// clustering bound N.
type Maintainer struct {
	cfg      Config
	db       *graph.DB
	clusters [][]int
	csgs     []*csg.CSG
	patterns []*core.Pattern
}

// NewMaintainer runs the full pipeline once and returns a maintainer that
// can absorb subsequent insertions incrementally.
func NewMaintainer(db *graph.DB, cfg Config) (*Maintainer, error) {
	return NewMaintainerCtx(context.Background(), db, cfg)
}

// NewMaintainerCtx is NewMaintainer with cooperative cancellation of the
// initial pipeline run.
func NewMaintainerCtx(stdctx context.Context, db *graph.DB, cfg Config) (*Maintainer, error) {
	res, err := SelectCtx(stdctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &Maintainer{
		cfg:      cfg,
		db:       res.WorkingDB,
		clusters: res.Clusters,
		csgs:     res.CSGs,
		patterns: res.Patterns,
	}, nil
}

// Patterns returns the current canned pattern set.
func (m *Maintainer) Patterns() []*core.Pattern { return m.patterns }

// DB returns the maintainer's current database.
func (m *Maintainer) DB() *graph.DB { return m.db }

// NumClusters returns the current cluster count.
func (m *Maintainer) NumClusters() int { return len(m.clusters) }

// AddGraphs inserts new data graphs, updates clustering and CSGs
// incrementally and reselects patterns. It returns the pattern-selection
// duration.
func (m *Maintainer) AddGraphs(gs []*graph.Graph) (time.Duration, error) {
	return m.AddGraphsCtx(context.Background(), gs)
}

// AddGraphsCtx is AddGraphs with cooperative cancellation: fine splitting,
// CSG rebuilds and pattern reselection all check stdctx at their iteration
// boundaries. On cancellation the maintainer's pattern set and summaries
// may be partially rebuilt; rerun AddGraphsCtx(ctx, nil) semantics do not
// apply — callers should discard the maintainer on error.
func (m *Maintainer) AddGraphsCtx(stdctx context.Context, gs []*graph.Graph) (time.Duration, error) {
	if len(gs) == 0 {
		return 0, nil
	}
	base := m.db.Len()
	all := append(append([]*graph.Graph(nil), m.db.Graphs...), gs...)
	m.db = graph.NewDB(m.db.Name, all)

	dirty := make(map[int]bool)
	for i := range gs {
		gi := base + i
		ci := m.bestCluster(m.db.Graph(gi))
		m.clusters[ci] = append(m.clusters[ci], gi)
		dirty[ci] = true
	}

	// Split any cluster that outgrew N, using the configured fine
	// clustering.
	n := m.cfg.Clustering.N
	if n <= 0 {
		n = 20
	}
	var rebuilt [][]int
	var toSplit []*cluster.Cluster
	splitFrom := make(map[int]bool)
	for ci, members := range m.clusters {
		if len(members) > n && dirty[ci] {
			toSplit = append(toSplit, &cluster.Cluster{Members: members})
			splitFrom[ci] = true
		}
	}
	if len(toSplit) > 0 {
		split, err := cluster.FineCtx(stdctx, m.db, toSplit, m.cfg.Clustering)
		if err != nil {
			return 0, err
		}
		for ci, members := range m.clusters {
			if !splitFrom[ci] {
				rebuilt = append(rebuilt, members)
			}
		}
		for _, c := range split {
			rebuilt = append(rebuilt, c.Members)
		}
		m.clusters = rebuilt
		// Splits invalidate cluster indexing; rebuild every CSG that
		// changed membership. Conservatively rebuild all (still far
		// cheaper than reclustering from scratch).
		csgs, err := csg.BuildAllCtx(stdctx, m.db, m.clusters)
		if err != nil {
			return 0, err
		}
		m.csgs = csgs
	} else {
		for ci := range dirty {
			c, err := csg.BuildCtx(stdctx, m.db, m.clusters[ci])
			if err != nil {
				return 0, err
			}
			m.csgs[ci] = c
		}
	}

	start := time.Now()
	ctx := core.NewContext(m.db, m.csgs)
	if m.cfg.DisableCoverEngine {
		ctx.DisableCoverEngine()
	}
	sel, err := core.SelectCtx(stdctx, ctx, m.cfg.Budget, m.cfg.Selection)
	if err != nil {
		return 0, fmt.Errorf("catapult: reselect after insert: %w", err)
	}
	m.patterns = sel.Patterns
	return time.Since(start), nil
}

// bestCluster picks the cluster whose CSG shares the most edge-label mass
// with g: Σ over g's distinct edge labels of the label's support within
// the CSG, normalized by cluster size.
func (m *Maintainer) bestCluster(g *graph.Graph) int {
	glabels := make(map[string]struct{})
	for _, e := range g.Edges() {
		glabels[g.EdgeLabel(e.U, e.V)] = struct{}{}
	}
	best, bestScore := 0, -1.0
	for ci, c := range m.csgs {
		score := 0.0
		for e, ids := range c.EdgeGraphs {
			l := c.G.EdgeLabel(e.U, e.V)
			if _, ok := glabels[l]; ok {
				score += float64(ids.Len())
			}
		}
		score /= float64(len(c.Members) + 1)
		if score > bestScore || (score == bestScore && ci < best) {
			best, bestScore = ci, score
		}
	}
	return best
}
