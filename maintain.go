package catapult

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/csg"
	"repro/internal/graph"
)

// ErrRetryNotDue is returned by RetryCtx when a failed refresh is queued but
// its backoff window has not elapsed yet.
var ErrRetryNotDue = errors.New("catapult: queued refresh not due yet")

// Backoff bounds for failed incremental refreshes: the first retry is
// allowed after retryBaseDelay, doubling per consecutive failure up to
// retryMaxDelay.
const (
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 30 * time.Second
)

// Maintainer supports incremental maintenance of canned patterns as the
// underlying database evolves — the extension the paper sketches in Sec 1
// ("it can be extended to support incremental maintenance of canned
// patterns as the underlying data graphs evolve"). New graphs are assigned
// to the existing cluster whose summary shares the most edge-label mass
// with them (a cheap proxy for MCCS similarity); affected CSGs are rebuilt
// and pattern selection — the cheap phase relative to clustering — is
// rerun. Full reclustering happens only when a cluster outgrows the fine
// clustering bound N.
//
// Updates are transactional: AddGraphsCtx builds the new database,
// clustering, summaries and pattern set on copies and swaps them in only
// when every step succeeded. A failed or cancelled refresh therefore never
// leaves a partially-updated clusters/csgs/patterns triple — the maintainer
// keeps serving the last-good pattern set, the failed batch is queued, and
// RetryCtx retries it under capped exponential backoff.
type Maintainer struct {
	cfg      Config
	db       *graph.DB
	clusters [][]int
	csgs     []*csg.CSG
	patterns []*core.Pattern

	// Retry state for failed refreshes.
	pending   []*graph.Graph
	failures  int
	nextRetry time.Time
	lastErr   error

	now func() time.Time // injectable for backoff tests
}

// NewMaintainer runs the full pipeline once and returns a maintainer that
// can absorb subsequent insertions incrementally.
func NewMaintainer(db *graph.DB, cfg Config) (*Maintainer, error) {
	return NewMaintainerCtx(context.Background(), db, cfg)
}

// NewMaintainerCtx is NewMaintainer with cooperative cancellation of the
// initial pipeline run.
func NewMaintainerCtx(stdctx context.Context, db *graph.DB, cfg Config) (*Maintainer, error) {
	res, err := SelectCtx(stdctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &Maintainer{
		cfg:      cfg,
		db:       res.WorkingDB,
		clusters: res.Clusters,
		csgs:     res.CSGs,
		patterns: res.Patterns,
		now:      time.Now,
	}, nil
}

// Patterns returns the current canned pattern set — always the last-good
// set, even after failed refreshes.
func (m *Maintainer) Patterns() []*core.Pattern { return m.patterns }

// DB returns the maintainer's current database.
func (m *Maintainer) DB() *graph.DB { return m.db }

// NumClusters returns the current cluster count.
func (m *Maintainer) NumClusters() int { return len(m.clusters) }

// Pending returns the number of graphs queued from failed refreshes.
func (m *Maintainer) Pending() int { return len(m.pending) }

// NextRetry returns when the queued refresh becomes due (zero when nothing
// is queued).
func (m *Maintainer) NextRetry() time.Time { return m.nextRetry }

// LastErr returns the error of the most recent failed refresh, or nil.
func (m *Maintainer) LastErr() error { return m.lastErr }

// AddGraphs inserts new data graphs, updates clustering and CSGs
// incrementally and reselects patterns. It returns the pattern-selection
// duration.
func (m *Maintainer) AddGraphs(gs []*graph.Graph) (time.Duration, error) {
	return m.AddGraphsCtx(context.Background(), gs)
}

// AddGraphsCtx is AddGraphs with cooperative cancellation: fine splitting,
// CSG rebuilds and pattern reselection all check stdctx at their iteration
// boundaries.
//
// The update is transactional. On any failure — cancellation included — the
// maintainer's database, clusters, summaries and pattern set are untouched
// and keep serving queries; the batch (together with any earlier queued
// batch) is parked on the retry queue with capped exponential backoff. An
// explicit AddGraphsCtx call always attempts immediately, folding in the
// queued batch; RetryCtx honors the backoff window.
func (m *Maintainer) AddGraphsCtx(stdctx context.Context, gs []*graph.Graph) (time.Duration, error) {
	if len(gs) == 0 && len(m.pending) == 0 {
		return 0, nil
	}
	batch := append(append([]*graph.Graph(nil), m.pending...), gs...)
	pgt, err := m.tryRefresh(stdctx, batch)
	if err != nil {
		m.queueFailed(batch, err)
		return 0, err
	}
	m.clearRetryState()
	return pgt, nil
}

// RetryCtx retries the queued batch from earlier failed refreshes. It
// returns ErrRetryNotDue while the backoff window is still open, (0, nil)
// when nothing is queued, and otherwise behaves like AddGraphsCtx of the
// queued batch.
func (m *Maintainer) RetryCtx(stdctx context.Context) (time.Duration, error) {
	if len(m.pending) == 0 {
		return 0, nil
	}
	if m.now().Before(m.nextRetry) {
		return 0, ErrRetryNotDue
	}
	return m.AddGraphsCtx(stdctx, nil)
}

func (m *Maintainer) queueFailed(batch []*graph.Graph, err error) {
	m.pending = batch
	m.failures++
	m.lastErr = err
	delay := retryBaseDelay << (m.failures - 1)
	if m.failures > 20 || delay > retryMaxDelay || delay <= 0 {
		delay = retryMaxDelay
	}
	m.nextRetry = m.now().Add(delay)
}

func (m *Maintainer) clearRetryState() {
	m.pending = nil
	m.failures = 0
	m.nextRetry = time.Time{}
	m.lastErr = nil
}

// tryRefresh computes the post-insert state on copies and swaps it into the
// maintainer only when every step succeeded.
func (m *Maintainer) tryRefresh(stdctx context.Context, gs []*graph.Graph) (time.Duration, error) {
	base := m.db.Len()
	all := append(append([]*graph.Graph(nil), m.db.Graphs...), gs...)
	db := graph.NewDB(m.db.Name, all)

	// Assign each new graph to its best cluster, on a copied cluster list
	// (inner slices copied on first write).
	clusters := append([][]int(nil), m.clusters...)
	copied := make(map[int]bool)
	dirty := make(map[int]bool)
	for i := range gs {
		gi := base + i
		ci := bestCluster(m.csgs, db.Graph(gi))
		if !copied[ci] {
			clusters[ci] = append([]int(nil), clusters[ci]...)
			copied[ci] = true
		}
		clusters[ci] = append(clusters[ci], gi)
		dirty[ci] = true
	}

	// Split any cluster that outgrew N, using the configured fine
	// clustering.
	n := m.cfg.Clustering.N
	if n <= 0 {
		n = 20
	}
	var toSplit []*cluster.Cluster
	splitFrom := make(map[int]bool)
	for ci, members := range clusters {
		if len(members) > n && dirty[ci] {
			toSplit = append(toSplit, &cluster.Cluster{Members: members})
			splitFrom[ci] = true
		}
	}
	csgs := append([]*csg.CSG(nil), m.csgs...)
	if len(toSplit) > 0 {
		split, err := cluster.FineCtx(stdctx, db, toSplit, m.cfg.Clustering)
		if err != nil {
			return 0, err
		}
		var rebuilt [][]int
		for ci, members := range clusters {
			if !splitFrom[ci] {
				rebuilt = append(rebuilt, members)
			}
		}
		for _, c := range split {
			rebuilt = append(rebuilt, c.Members)
		}
		clusters = rebuilt
		// Splits invalidate cluster indexing; rebuild every CSG that
		// changed membership. Conservatively rebuild all (still far
		// cheaper than reclustering from scratch).
		csgs, err = csg.BuildAllCtx(stdctx, db, clusters)
		if err != nil {
			return 0, err
		}
	} else {
		for ci := range dirty {
			c, err := csg.BuildCtx(stdctx, db, clusters[ci])
			if err != nil {
				return 0, err
			}
			csgs[ci] = c
		}
	}

	start := time.Now()
	ctx := core.NewContext(db, csgs)
	if m.cfg.DisableCoverEngine {
		ctx.DisableCoverEngine()
	}
	sel, err := core.SelectCtx(stdctx, ctx, m.cfg.Budget, m.cfg.Selection)
	if err != nil {
		return 0, fmt.Errorf("catapult: reselect after insert: %w", err)
	}

	// Commit: every step succeeded, swap the new state in atomically.
	m.db = db
	m.clusters = clusters
	m.csgs = csgs
	m.patterns = sel.Patterns
	return time.Since(start), nil
}

// bestCluster picks the cluster whose CSG shares the most edge-label mass
// with g: Σ over g's distinct edge labels of the label's support within
// the CSG, normalized by cluster size.
func bestCluster(csgs []*csg.CSG, g *graph.Graph) int {
	glabels := make(map[string]struct{})
	for _, e := range g.Edges() {
		glabels[g.EdgeLabel(e.U, e.V)] = struct{}{}
	}
	best, bestScore := 0, -1.0
	for ci, c := range csgs {
		score := 0.0
		for e, ids := range c.EdgeGraphs {
			l := c.G.EdgeLabel(e.U, e.V)
			if _, ok := glabels[l]; ok {
				score += float64(ids.Len())
			}
		}
		score /= float64(len(c.Members) + 1)
		if score > bestScore || (score == bestScore && ci < best) {
			best, bestScore = ci, score
		}
	}
	return best
}
