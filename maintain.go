package catapult

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/csg"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
)

// ErrRetryNotDue is returned by RetryCtx when a failed refresh is queued but
// its backoff window has not elapsed yet.
var ErrRetryNotDue = errors.New("catapult: queued refresh not due yet")

// Backoff bounds for failed incremental refreshes: the first retry is
// allowed after retryBaseDelay, doubling per consecutive failure up to
// retryMaxDelay.
const (
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 30 * time.Second
)

// Maintainer supports incremental maintenance of canned patterns as the
// underlying database evolves — the extension the paper sketches in Sec 1
// ("it can be extended to support incremental maintenance of canned
// patterns as the underlying data graphs evolve"). New graphs are assigned
// to the existing cluster whose summary shares the most edge-label mass
// with them (a cheap proxy for MCCS similarity); affected CSGs are rebuilt
// and pattern selection — the cheap phase relative to clustering — is
// rerun. Full reclustering happens only when a cluster outgrows the fine
// clustering bound N.
//
// Updates are transactional: AddGraphsCtx builds the new database,
// clustering, summaries and pattern set on copies and swaps them in only
// when every step succeeded. A failed or cancelled refresh therefore never
// leaves a partially-updated clusters/csgs/patterns triple — the maintainer
// keeps serving the last-good pattern set, the failed batch is queued, and
// RetryCtx retries it under capped exponential backoff.
type Maintainer struct {
	cfg      Config
	db       *graph.DB
	clusters [][]int
	csgs     []*csg.CSG
	patterns []*core.Pattern

	// version counts committed states monotonically: 1 after
	// construction, +1 per committed refresh. It is stamped into every
	// persisted snapshot and resumed on warm start.
	version uint64

	// mu serializes compound state transitions when the maintainer is
	// shared: the ServeSource adapter's State/Refresh calls and
	// PersistNow's shutdown flush all take it. Direct single-goroutine
	// use (the original contract) needs no locking.
	mu sync.Mutex

	// Retry state for failed refreshes.
	pending   []*graph.Graph
	failures  int
	nextRetry time.Time
	lastErr   error

	now func() time.Time // injectable for backoff tests

	// m holds the operational gauges when EnableMetrics was called, nil
	// otherwise. Gauges are updated at state transitions (refresh commit,
	// failure queue, retry-state clear), so a concurrent scrape only ever
	// touches atomics.
	m   *maintainerMetrics
	reg *Metrics // registry m was built from, for late store-metric wiring

	// Persistence state (EnablePersistence / maintain_persist.go):
	// the snapshot store, the last committed generation, the most recent
	// persist error, and the catapult_store_* series.
	store       *store.Store
	lastGen     uint64
	lastPersist error
	sm          *storeMetrics
}

// maintainerMetrics are the Maintainer's operational series, registered by
// EnableMetrics.
type maintainerMetrics struct {
	pending     metrics.Gauge     // graphs parked on the retry queue
	nextRetry   metrics.Gauge     // unix seconds the queued batch becomes due, 0 when idle
	failures    metrics.Counter   // failed refreshes since EnableMetrics
	refreshes   metrics.Counter   // committed refreshes since EnableMetrics
	lastRefresh metrics.Gauge     // duration of the last committed refresh, seconds
	refreshDur  metrics.Histogram // distribution of committed refresh durations
	clusters    metrics.Gauge     // current cluster count
	patterns    metrics.Gauge     // current canned-pattern count
}

// EnableMetrics registers the maintainer's operational gauges on m and
// seeds them with the current state: queued batch size, next-retry time,
// refresh failure/commit counters, last-refresh duration, and the served
// cluster/pattern counts. Call once after NewMaintainerCtx; the same
// registry can also carry the pipeline metrics of the runs (see
// MetricsObserver).
func (mt *Maintainer) EnableMetrics(m *Metrics) {
	mm := &maintainerMetrics{
		pending:     m.Gauge("catapult_maintainer_pending_graphs", "Graphs queued from failed incremental refreshes, awaiting retry."),
		nextRetry:   m.Gauge("catapult_maintainer_next_retry_unix_seconds", "When the queued refresh becomes due (unix seconds; 0 when nothing is queued)."),
		failures:    m.Counter("catapult_maintainer_refresh_failures", "Failed incremental refreshes (batch parked on the retry queue)."),
		refreshes:   m.Counter("catapult_maintainer_refreshes", "Committed incremental refreshes."),
		lastRefresh: m.Gauge("catapult_maintainer_last_refresh_seconds", "Duration of the most recent committed refresh."),
		refreshDur:  m.Histogram("catapult_maintainer_refresh_duration_seconds", "Distribution of committed refresh durations.", nil),
		clusters:    m.Gauge("catapult_maintainer_clusters", "Clusters currently served."),
		patterns:    m.Gauge("catapult_maintainer_patterns", "Canned patterns currently served."),
	}
	mt.m = mm
	mt.reg = m
	mt.wireStoreMetrics()
	mm.clusters.Set(float64(len(mt.clusters)))
	mm.patterns.Set(float64(len(mt.patterns)))
	mm.pending.Set(float64(len(mt.pending)))
	if mt.nextRetry.IsZero() {
		mm.nextRetry.Set(0)
	} else {
		mm.nextRetry.Set(float64(mt.nextRetry.Unix()))
	}
}

// NewMaintainer runs the full pipeline once and returns a maintainer that
// can absorb subsequent insertions incrementally.
//
// Deprecated: use NewMaintainerCtx, which adds cooperative cancellation of
// the initial pipeline run.
func NewMaintainer(db *graph.DB, cfg Config) (*Maintainer, error) {
	return NewMaintainerCtx(context.Background(), db, cfg)
}

// NewMaintainerCtx is NewMaintainer with cooperative cancellation of the
// initial pipeline run.
func NewMaintainerCtx(stdctx context.Context, db *graph.DB, cfg Config) (*Maintainer, error) {
	res, err := SelectCtx(stdctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &Maintainer{
		cfg:      cfg,
		db:       res.WorkingDB,
		clusters: res.Clusters,
		csgs:     res.CSGs,
		patterns: res.Patterns,
		now:      time.Now,
		version:  1,
	}, nil
}

// Patterns returns the current canned pattern set — always the last-good
// set, even after failed refreshes.
func (m *Maintainer) Patterns() []*core.Pattern { return m.patterns }

// DB returns the maintainer's current database.
func (m *Maintainer) DB() *graph.DB { return m.db }

// NumClusters returns the current cluster count.
func (m *Maintainer) NumClusters() int { return len(m.clusters) }

// Pending returns the number of graphs queued from failed refreshes.
func (m *Maintainer) Pending() int { return len(m.pending) }

// NextRetry returns when the queued refresh becomes due (zero when nothing
// is queued).
func (m *Maintainer) NextRetry() time.Time { return m.nextRetry }

// LastErr returns the error of the most recent failed refresh, or nil.
func (m *Maintainer) LastErr() error { return m.lastErr }

// AddGraphs inserts new data graphs, updates clustering and CSGs
// incrementally and reselects patterns. It returns the pattern-selection
// duration.
//
// Deprecated: use AddGraphsCtx, which adds cooperative cancellation of the
// refresh (the transactional retry-queue semantics are identical).
func (m *Maintainer) AddGraphs(gs []*graph.Graph) (time.Duration, error) {
	return m.AddGraphsCtx(context.Background(), gs)
}

// AddGraphsCtx is AddGraphs with cooperative cancellation: fine splitting,
// CSG rebuilds and pattern reselection all check stdctx at their iteration
// boundaries.
//
// The update is transactional. On any failure — cancellation included — the
// maintainer's database, clusters, summaries and pattern set are untouched
// and keep serving queries; the batch (together with any earlier queued
// batch) is parked on the retry queue with capped exponential backoff. An
// explicit AddGraphsCtx call always attempts immediately, folding in the
// queued batch; RetryCtx honors the backoff window.
func (m *Maintainer) AddGraphsCtx(stdctx context.Context, gs []*graph.Graph) (time.Duration, error) {
	if len(gs) == 0 && len(m.pending) == 0 {
		return 0, nil
	}
	batch := append(append([]*graph.Graph(nil), m.pending...), gs...)
	pgt, err := m.tryRefresh(stdctx, batch)
	if err != nil {
		m.queueFailed(batch, err)
		// Best-effort durability of the failure transition: the queued
		// batch and its backoff ladder position survive a crash, so a
		// warm start re-queues the batch exactly once.
		m.persist(stdctx)
		return 0, err
	}
	m.clearRetryState()
	// Persist after the retry state is cleared, never between commit and
	// clear: the snapshot must not both contain the absorbed batch in the
	// database and still carry it as pending, or a warm start would
	// absorb it twice. Failures are recorded (LastPersistErr), not
	// returned — the in-memory commit already happened.
	m.persist(stdctx)
	return pgt, nil
}

// RetryCtx retries the queued batch from earlier failed refreshes. It
// returns ErrRetryNotDue while the backoff window is still open, (0, nil)
// when nothing is queued, and otherwise behaves like AddGraphsCtx of the
// queued batch.
func (m *Maintainer) RetryCtx(stdctx context.Context) (time.Duration, error) {
	if len(m.pending) == 0 {
		return 0, nil
	}
	if m.now().Before(m.nextRetry) {
		return 0, ErrRetryNotDue
	}
	return m.AddGraphsCtx(stdctx, nil)
}

func (m *Maintainer) queueFailed(batch []*graph.Graph, err error) {
	m.pending = batch
	m.failures++
	m.lastErr = err
	delay := retryBaseDelay << (m.failures - 1)
	if m.failures > 20 || delay > retryMaxDelay || delay <= 0 {
		delay = retryMaxDelay
	}
	m.nextRetry = m.now().Add(delay)
	if m.m != nil {
		m.m.failures.Inc()
		m.m.pending.Set(float64(len(m.pending)))
		m.m.nextRetry.Set(float64(m.nextRetry.Unix()))
	}
}

func (m *Maintainer) clearRetryState() {
	m.pending = nil
	m.failures = 0
	m.nextRetry = time.Time{}
	m.lastErr = nil
	if m.m != nil {
		m.m.pending.Set(0)
		m.m.nextRetry.Set(0)
	}
}

// ensureCSGs lazily rebuilds the cluster summary graphs. A warm-started
// maintainer (NewMaintainerFromState) serves patterns without them —
// they are derived state, deliberately not persisted — and only needs
// them for its first incremental refresh.
func (m *Maintainer) ensureCSGs(stdctx context.Context) error {
	if m.csgs != nil {
		return nil
	}
	csgs, err := csg.BuildAllCtx(stdctx, m.db, m.clusters)
	if err != nil {
		return err
	}
	m.csgs = csgs
	return nil
}

// tryRefresh computes the post-insert state on copies and swaps it into the
// maintainer only when every step succeeded.
func (m *Maintainer) tryRefresh(stdctx context.Context, gs []*graph.Graph) (time.Duration, error) {
	if err := m.ensureCSGs(stdctx); err != nil {
		return 0, err
	}
	base := m.db.Len()
	all := append(append([]*graph.Graph(nil), m.db.Graphs...), gs...)
	db := graph.NewDB(m.db.Name, all)

	// Assign each new graph to its best cluster, on a copied cluster list
	// (inner slices copied on first write).
	clusters := append([][]int(nil), m.clusters...)
	copied := make(map[int]bool)
	dirty := make(map[int]bool)
	for i := range gs {
		gi := base + i
		ci := bestCluster(m.csgs, db.Graph(gi))
		if !copied[ci] {
			clusters[ci] = append([]int(nil), clusters[ci]...)
			copied[ci] = true
		}
		clusters[ci] = append(clusters[ci], gi)
		dirty[ci] = true
	}

	// Split any cluster that outgrew N, using the configured fine
	// clustering.
	n := m.cfg.Clustering.N
	if n <= 0 {
		n = 20
	}
	var toSplit []*cluster.Cluster
	splitFrom := make(map[int]bool)
	for ci, members := range clusters {
		if len(members) > n && dirty[ci] {
			toSplit = append(toSplit, &cluster.Cluster{Members: members})
			splitFrom[ci] = true
		}
	}
	csgs := append([]*csg.CSG(nil), m.csgs...)
	if len(toSplit) > 0 {
		split, err := cluster.FineCtx(stdctx, db, toSplit, m.cfg.Clustering)
		if err != nil {
			return 0, err
		}
		var rebuilt [][]int
		for ci, members := range clusters {
			if !splitFrom[ci] {
				rebuilt = append(rebuilt, members)
			}
		}
		for _, c := range split {
			rebuilt = append(rebuilt, c.Members)
		}
		clusters = rebuilt
		// Splits invalidate cluster indexing; rebuild every CSG that
		// changed membership. Conservatively rebuild all (still far
		// cheaper than reclustering from scratch).
		csgs, err = csg.BuildAllCtx(stdctx, db, clusters)
		if err != nil {
			return 0, err
		}
	} else {
		for ci := range dirty {
			c, err := csg.BuildCtx(stdctx, db, clusters[ci])
			if err != nil {
				return 0, err
			}
			csgs[ci] = c
		}
	}

	start := time.Now()
	ctx := core.NewContext(db, csgs)
	if m.cfg.DisableCoverEngine {
		ctx.DisableCoverEngine()
	}
	sel, err := core.SelectCtx(stdctx, ctx, m.cfg.Budget, m.cfg.Selection)
	if err != nil {
		return 0, fmt.Errorf("catapult: reselect after insert: %w", err)
	}

	// Commit: every step succeeded, swap the new state in atomically.
	m.db = db
	m.clusters = clusters
	m.csgs = csgs
	m.patterns = sel.Patterns
	m.version++
	pgt := time.Since(start)
	if m.m != nil {
		m.m.refreshes.Inc()
		m.m.lastRefresh.Set(pgt.Seconds())
		m.m.refreshDur.Observe(pgt.Seconds())
		m.m.clusters.Set(float64(len(m.clusters)))
		m.m.patterns.Set(float64(len(m.patterns)))
	}
	return pgt, nil
}

// bestCluster picks the cluster whose CSG shares the most edge-label mass
// with g: Σ over g's distinct edge labels of the label's support within
// the CSG, normalized by cluster size.
func bestCluster(csgs []*csg.CSG, g *graph.Graph) int {
	glabels := make(map[string]struct{})
	for _, e := range g.Edges() {
		glabels[g.EdgeLabel(e.U, e.V)] = struct{}{}
	}
	best, bestScore := 0, -1.0
	for ci, c := range csgs {
		score := 0.0
		for e, ids := range c.EdgeGraphs {
			l := c.G.EdgeLabel(e.U, e.V)
			if _, ok := glabels[l]; ok {
				score += float64(ids.Len())
			}
		}
		score /= float64(len(c.Members) + 1)
		if score > bestScore || (score == bestScore && ci < best) {
			best, bestScore = ci, score
		}
	}
	return best
}
