package catapult

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gindex"
	"repro/internal/metrics"
	"repro/internal/store"
)

// This file wires the CSNAP1 snapshot store (internal/store) through the
// Maintainer and the facade: EnablePersistence makes every committed
// refresh — and every failure-queue transition — durable, and
// NewMaintainerFromState warm-starts a maintainer from a recovered
// snapshot in milliseconds instead of re-running the mining pipeline.
//
// Persistence is deliberately decoupled from refresh transactionality: a
// refresh that committed in memory is never un-committed because its
// snapshot write failed. Persist failures are recorded (LastPersistErr,
// catapult_store_persist_failures) and the next state transition retries;
// the on-disk state is then simply one generation stale, which recovery
// handles by design.

// EnablePersistence opens (creating if needed) a CSNAP1 snapshot store in
// dir and persists the maintainer's current state immediately, so a warm
// restart is possible even before the first refresh. Afterwards every
// committed refresh and every retry-queue transition writes a new
// generation. Call at most once, before the maintainer is shared with a
// serving layer.
func (m *Maintainer) EnablePersistence(dir string) error {
	s, err := store.Open(dir)
	if err != nil {
		return err
	}
	m.store = s
	m.wireStoreMetrics()
	return m.persist(context.Background())
}

// PersistNow synchronously flushes the current state as a new snapshot
// generation — the graceful-shutdown hook. It returns the committed
// generation, or an error when persistence is not enabled or the write
// failed. Safe to call concurrently with serving-layer refreshes (it
// takes the same lock the ServeSource adapter serializes on).
func (m *Maintainer) PersistNow(ctx context.Context) (uint64, error) {
	if m.store == nil {
		return 0, errors.New("catapult: persistence not enabled")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.persist(ctx); err != nil {
		return 0, err
	}
	return m.lastGen, nil
}

// StateVersion returns the maintainer's monotone state version: 1 after
// construction, +1 per committed refresh. Warm starts resume from the
// persisted version.
func (m *Maintainer) StateVersion() uint64 { return m.version }

// LastPersistErr returns the error of the most recent snapshot write, or
// nil when it succeeded (or persistence is disabled). A non-nil value
// means the on-disk state is stale by at least one transition.
func (m *Maintainer) LastPersistErr() error { return m.lastPersist }

// SnapshotState captures the maintainer's full durable state — database,
// patterns, clusters, gindex persist bytes, retry bookkeeping — as a
// StoredState. SavedAt is left zero; persistence stamps it at write time.
func (m *Maintainer) SnapshotState() *StoredState {
	pats := make([]StoredPattern, len(m.patterns))
	for i, p := range m.patterns {
		pats[i] = StoredPattern{
			G: p.Graph, Score: p.Score, Ccov: p.Ccov, Lcov: p.Lcov,
			Div: p.Div, Cog: p.Cog, SourceCSG: p.SourceCSG,
		}
	}
	st := &StoredState{
		Dataset:   m.db.Name,
		Version:   m.version,
		Graphs:    m.db.Graphs,
		Patterns:  pats,
		Clusters:  m.clusters,
		Pending:   m.pending,
		Failures:  m.failures,
		NextRetry: m.nextRetry,
	}
	if m.lastErr != nil {
		st.LastErr = m.lastErr.Error()
	}
	var buf bytes.Buffer
	if err := gindex.Build(m.db, gindex.Options{}).Save(&buf); err == nil {
		st.IndexBytes = buf.Bytes()
	}
	return st
}

// persist writes the current state as the next snapshot generation,
// best-effort: the caller's context is stripped of cancellation (a
// refresh that failed *because* of cancellation must still persist its
// queued batch) but keeps its values, so pipeline traces and the chaos
// injector still see the write. No-op when persistence is disabled.
func (m *Maintainer) persist(stdctx context.Context) error {
	if m.store == nil {
		return nil
	}
	st := m.SnapshotState()
	st.SavedAt = m.now()
	start := time.Now()
	gen, err := m.store.WriteCtx(context.WithoutCancel(stdctx), st)
	m.lastPersist = err
	if err != nil {
		if m.sm != nil {
			m.sm.persistFailures.Inc()
		}
		return err
	}
	m.lastGen = gen
	if m.sm != nil {
		m.sm.persists.Inc()
		m.sm.generation.Set(float64(gen))
		m.sm.persistDur.Observe(time.Since(start).Seconds())
	}
	return nil
}

// storeMetrics are the persistence-side catapult_store_* series,
// registered once both EnableMetrics and EnablePersistence have run.
type storeMetrics struct {
	generation      metrics.Gauge     // newest committed snapshot generation
	persists        metrics.Counter   // committed snapshot writes
	persistFailures metrics.Counter   // failed snapshot writes (state stale on disk)
	persistDur      metrics.Histogram // persist duration distribution
}

// wireStoreMetrics registers the store series when both a registry and a
// store are present; called from EnableMetrics and EnablePersistence so
// either order works.
func (m *Maintainer) wireStoreMetrics() {
	if m.sm != nil || m.reg == nil || m.store == nil {
		return
	}
	m.sm = &storeMetrics{
		generation:      m.reg.Gauge("catapult_store_generation", "Newest committed snapshot generation in the state store."),
		persists:        m.reg.Counter("catapult_store_persists", "Committed snapshot writes (atomic rename + fsync)."),
		persistFailures: m.reg.Counter("catapult_store_persist_failures", "Failed snapshot writes; the on-disk state is stale until the next state transition retries."),
		persistDur:      m.reg.Histogram("catapult_store_persist_duration_seconds", "Distribution of snapshot persist durations (encode + durable write).", nil),
	}
}

// ObserveRecovery records a recovery scan's outcome on a metrics
// registry: catapult_store_recovery_total{outcome=clean|degraded|cold|
// failed}, the recovered generation, and how many generations were
// skipped as unverifiable. Call it with the RecoveryInfo from LoadState
// (or SnapshotStore.Recover) before serving traffic, so readiness and
// degraded starts are visible to scrapes.
func ObserveRecovery(m *Metrics, info *StoreRecovery) {
	if m == nil || info == nil {
		return
	}
	m.CounterVec("catapult_store_recovery",
		"Recovery scans by outcome: clean, degraded (fell back past corruption), cold (no snapshot), failed (nothing verifiable).",
		"outcome").With(info.Outcome()).Inc()
	m.Gauge("catapult_store_recovered_generation",
		"Snapshot generation loaded by the most recent recovery (0 when none).").
		Set(float64(info.Generation))
	m.Gauge("catapult_store_recovery_skipped_generations",
		"Generations the most recent recovery skipped as unverifiable.").
		Set(float64(len(info.Skipped)))
}

// SaveState writes st as the next snapshot generation in dir, creating
// the store as needed, and returns the committed generation number. The
// write is atomic and durable (temp file, fsync, rename, directory
// fsync).
func SaveState(ctx context.Context, dir string, st *StoredState) (uint64, error) {
	s, err := store.Open(dir)
	if err != nil {
		return 0, err
	}
	return s.WriteCtx(ctx, st)
}

// LoadState recovers the newest verifiable snapshot from dir, scanning
// generations newest-first and falling back past corruption. It returns
// the recovered state together with the scan report; when nothing
// verifies the error is ErrNoSnapshot and the report tells a clean cold
// start (Outcome "cold") apart from a degraded one ("failed").
func LoadState(dir string) (*StoredState, *StoreRecovery, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	return s.Recover()
}

// NewMaintainerFromState warm-starts a maintainer from a recovered
// snapshot: the database is re-frozen (CSR arrays and interner warmed),
// the pattern set, cluster membership and retry bookkeeping resume
// exactly where the snapshot left them, and a batch that was queued
// before the crash is re-queued exactly once, at its persisted backoff
// ladder position. Cluster summary graphs are rebuilt lazily on the
// first refresh — they are derived state, cheap relative to mining.
//
// No pipeline run happens: construction is decode + freeze, which is
// what makes a service restart in milliseconds instead of a re-mine
// (make bench-gate-restart gates the ratio).
func NewMaintainerFromState(st *StoredState, cfg Config) (*Maintainer, error) {
	if st == nil {
		return nil, errors.New("catapult: nil stored state")
	}
	if len(st.Graphs) == 0 {
		return nil, errors.New("catapult: stored state has no graphs")
	}
	for ci, members := range st.Clusters {
		for _, g := range members {
			if g < 0 || g >= len(st.Graphs) {
				return nil, fmt.Errorf("catapult: stored cluster %d references missing graph %d", ci, g)
			}
		}
	}
	db := st.DB()
	db.Freeze()
	pats := make([]*core.Pattern, len(st.Patterns))
	for i := range st.Patterns {
		p := st.Patterns[i]
		pats[i] = &core.Pattern{
			Graph: p.G, Score: p.Score, Ccov: p.Ccov, Lcov: p.Lcov,
			Div: p.Div, Cog: p.Cog, SourceCSG: p.SourceCSG,
		}
	}
	m := &Maintainer{
		cfg:       cfg,
		db:        db,
		clusters:  st.Clusters,
		patterns:  pats,
		pending:   st.Pending,
		failures:  st.Failures,
		nextRetry: st.NextRetry,
		now:       time.Now,
		version:   st.Version,
	}
	if st.LastErr != "" {
		m.lastErr = errors.New(st.LastErr)
	}
	return m, nil
}
