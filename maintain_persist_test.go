package catapult

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// persistentMaintainer is testMaintainer with persistence enabled in a
// fresh temp directory.
func persistentMaintainer(t *testing.T) (*Maintainer, string) {
	t.Helper()
	m := testMaintainer(t)
	dir := t.TempDir()
	if err := m.EnablePersistence(dir); err != nil {
		t.Fatal(err)
	}
	return m, dir
}

// unstamped zeroes the write-time stamp so a recovered snapshot can be
// compared bit-for-bit against a live SnapshotState (which leaves SavedAt
// zero by contract).
func unstamped(st *StoredState) *StoredState {
	st.SavedAt = time.Time{}
	return st
}

// EnablePersistence must make the state durable immediately — before any
// refresh — and every committed refresh must write the next generation,
// recoverable bit-identically.
func TestMaintainerPersistenceLifecycle(t *testing.T) {
	m, dir := persistentMaintainer(t)
	if m.lastGen != 1 || m.LastPersistErr() != nil {
		t.Fatalf("after EnablePersistence: gen=%d err=%v, want gen 1", m.lastGen, m.LastPersistErr())
	}

	st, info, err := LoadState(dir)
	if err != nil || info.Outcome() != "clean" {
		t.Fatalf("LoadState after construction: %v (%s)", err, info.Outcome())
	}
	if ok, err := store.Equal(unstamped(st), m.SnapshotState()); err != nil || !ok {
		t.Fatalf("recovered construction state not bit-identical: %v", err)
	}
	if st.Version != 1 || m.StateVersion() != 1 {
		t.Fatalf("versions = disk %d / live %d, want 1/1", st.Version, m.StateVersion())
	}

	extra := dataset.AIDSLike(4, 99)
	if _, err := m.AddGraphsCtx(context.Background(), extra.Graphs); err != nil {
		t.Fatal(err)
	}
	if m.lastGen != 2 || m.StateVersion() != 2 {
		t.Fatalf("after refresh: gen=%d version=%d, want 2/2", m.lastGen, m.StateVersion())
	}
	st, info, err = LoadState(dir)
	if err != nil || info.Generation != 2 {
		t.Fatalf("LoadState after refresh: gen %d, %v", info.Generation, err)
	}
	if ok, _ := store.Equal(unstamped(st), m.SnapshotState()); !ok {
		t.Fatal("recovered post-refresh state not bit-identical to live state")
	}
	if len(st.Graphs) != 34 {
		t.Fatalf("recovered db has %d graphs, want 34", len(st.Graphs))
	}

	// PersistNow (the shutdown flush) commits another generation even with
	// no state change.
	gen, err := m.PersistNow(context.Background())
	if err != nil || gen != 3 {
		t.Fatalf("PersistNow = %d, %v; want gen 3", gen, err)
	}
}

// A warm-started maintainer must serve the persisted pattern set
// unchanged, resume the version counter, and absorb its next refresh
// normally (cluster summaries are rebuilt lazily on that first refresh).
func TestMaintainerWarmStartServesAndRefreshes(t *testing.T) {
	m, dir := persistentMaintainer(t)
	if _, err := m.AddGraphsCtx(context.Background(), dataset.AIDSLike(4, 99).Graphs); err != nil {
		t.Fatal(err)
	}

	st, _, err := LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewMaintainerFromState(st, m.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StateVersion() != 2 || warm.DB().Len() != m.DB().Len() {
		t.Fatalf("warm start: version=%d len=%d, want %d/%d",
			warm.StateVersion(), warm.DB().Len(), m.StateVersion(), m.DB().Len())
	}
	if len(warm.Patterns()) != len(m.Patterns()) {
		t.Fatalf("warm start pattern count %d, want %d", len(warm.Patterns()), len(m.Patterns()))
	}
	for i, p := range warm.Patterns() {
		q := m.Patterns()[i]
		if p.Graph.String() != q.Graph.String() || p.Score != q.Score ||
			p.Ccov != q.Ccov || p.Lcov != q.Lcov || p.Div != q.Div || p.Cog != q.Cog {
			t.Fatalf("warm pattern %d differs from live pattern", i)
		}
	}

	// First refresh on the warm instance: ensureCSGs rebuilds the derived
	// summaries, then the refresh commits.
	if warm.csgs != nil {
		t.Fatal("warm start eagerly built CSGs; they should be lazy")
	}
	if _, err := warm.AddGraphsCtx(context.Background(), dataset.AIDSLike(3, 7).Graphs); err != nil {
		t.Fatalf("first refresh after warm start: %v", err)
	}
	if warm.DB().Len() != 37 || warm.StateVersion() != 3 {
		t.Fatalf("after warm refresh: len=%d version=%d, want 37/3", warm.DB().Len(), warm.StateVersion())
	}
	if len(warm.csgs) != len(warm.clusters) {
		t.Fatalf("CSGs not rebuilt: %d summaries for %d clusters", len(warm.csgs), len(warm.clusters))
	}

	// Rejects for hostile stored states stay typed errors, never panics.
	if _, err := NewMaintainerFromState(nil, m.cfg); err == nil {
		t.Error("nil stored state accepted")
	}
	if _, err := NewMaintainerFromState(&StoredState{}, m.cfg); err == nil {
		t.Error("empty stored state accepted")
	}
	bad := *st
	bad.Clusters = [][]int{{len(st.Graphs)}}
	if _, err := NewMaintainerFromState(&bad, m.cfg); err == nil {
		t.Error("out-of-range cluster member accepted")
	}
}

// A batch that was queued by a failed refresh and then lost to a crash
// must come back exactly once: the warm-started maintainer re-queues it
// at the persisted ladder position, honors the persisted deadline, and a
// successful retry absorbs it without duplication.
func TestMaintainerWarmStartPendingRequeuedExactlyOnce(t *testing.T) {
	m, dir := persistentMaintainer(t)
	cur := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return cur }

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.AddGraphsCtx(cancelled, dataset.AIDSLike(5, 99).Graphs); err == nil {
		t.Fatal("want failure under cancelled context")
	}
	// The failure transition itself must have been persisted (the batch
	// must survive the crash we are about to simulate).
	if m.lastGen != 2 || m.LastPersistErr() != nil {
		t.Fatalf("failure transition not persisted: gen=%d err=%v", m.lastGen, m.LastPersistErr())
	}
	wantRetry := m.NextRetry()

	// "Crash": drop the maintainer, recover from disk.
	st, info, err := LoadState(dir)
	if err != nil || info.Generation != 2 {
		t.Fatalf("LoadState: gen %d, %v", info.Generation, err)
	}
	warm, err := NewMaintainerFromState(st, m.cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm.now = func() time.Time { return cur }

	if warm.Pending() != 5 {
		t.Fatalf("warm Pending() = %d, want the queued batch of 5", warm.Pending())
	}
	if warm.failures != 1 {
		t.Fatalf("warm failures = %d, want 1", warm.failures)
	}
	if !warm.NextRetry().Equal(wantRetry) {
		t.Fatalf("warm NextRetry = %v, want persisted %v", warm.NextRetry(), wantRetry)
	}
	if warm.LastErr() == nil {
		t.Fatal("warm LastErr lost")
	}

	// Still inside the backoff window: refused, nothing disturbed.
	if _, err := warm.RetryCtx(context.Background()); !errors.Is(err, ErrRetryNotDue) {
		t.Fatalf("retry inside window: %v, want ErrRetryNotDue", err)
	}
	if warm.Pending() != 5 {
		t.Fatalf("refused retry disturbed pending: %d", warm.Pending())
	}

	// Due: the batch lands exactly once.
	cur = wantRetry
	if _, err := warm.RetryCtx(context.Background()); err != nil {
		t.Fatalf("due retry after warm start: %v", err)
	}
	if warm.DB().Len() != 35 {
		t.Fatalf("db after recovery retry = %d graphs, want 35 (batch exactly once)", warm.DB().Len())
	}
	if warm.Pending() != 0 || warm.failures != 0 || !warm.NextRetry().IsZero() {
		t.Fatalf("retry state not cleared: pending=%d failures=%d", warm.Pending(), warm.failures)
	}
	// A second retry must be a no-op, not a re-absorption.
	if _, err := warm.RetryCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if warm.DB().Len() != 35 {
		t.Fatalf("idle retry duplicated the batch: %d graphs", warm.DB().Len())
	}
}

// The backoff ladder must survive a restart mid-climb: a maintainer that
// crashed at rung k resumes doubling from rung k, not from the base.
func TestMaintainerWarmStartBackoffLadderRestored(t *testing.T) {
	m, dir := persistentMaintainer(t)
	cur := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return cur }

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.AddGraphsCtx(cancelled, dataset.AIDSLike(2, 5).Graphs); err == nil {
		t.Fatal("want failure under cancelled context")
	}
	const rungs = 3
	for k := 1; k < rungs; k++ {
		cur = m.NextRetry()
		if _, err := m.RetryCtx(cancelled); err == nil || errors.Is(err, ErrRetryNotDue) {
			t.Fatalf("rung %d: %v, want attempt failure", k, err)
		}
	}
	if m.failures != rungs {
		t.Fatalf("failures = %d, want %d", m.failures, rungs)
	}

	st, _, err := LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewMaintainerFromState(st, m.cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm.now = func() time.Time { return cur }
	if warm.failures != rungs || !warm.NextRetry().Equal(m.NextRetry()) {
		t.Fatalf("ladder not restored: failures=%d next=%v, want %d/%v",
			warm.failures, warm.NextRetry(), rungs, m.NextRetry())
	}

	// The next failure continues the schedule at rung+1, not at the base.
	cur = warm.NextRetry()
	if _, err := warm.RetryCtx(cancelled); err == nil || errors.Is(err, ErrRetryNotDue) {
		t.Fatalf("post-restart rung: %v, want attempt failure", err)
	}
	if got, want := warm.NextRetry().Sub(cur), retryBaseDelay<<rungs; got != want {
		t.Fatalf("post-restart backoff = %v, want rung %d delay %v", got, rungs+1, want)
	}
}

// A crash in the middle of the persist that follows a committed refresh
// must leave the previous generation recoverable bit-identically — the
// torn temp file is invisible to recovery — and the surviving process can
// simply persist again.
func TestMaintainerChaosPersistCrashMidWrite(t *testing.T) {
	m, dir := persistentMaintainer(t)
	before, _, err := LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New().PanicAfter(pipeline.CounterStoreBytes, 1, "kill persist")
	ctx := pipeline.WithTrace(context.Background(), inj)
	extra := dataset.AIDSLike(4, 99)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("persist kill did not fire")
			}
			if _, ok := r.(*faultinject.Panic); !ok {
				panic(r)
			}
		}()
		m.AddGraphsCtx(ctx, extra.Graphs)
	}()

	// The refresh committed in memory before the persist was killed; on
	// disk only generation 1 exists and it must be untouched.
	if m.StateVersion() != 2 {
		t.Fatalf("in-memory version = %d, want committed 2", m.StateVersion())
	}
	st, info, err := LoadState(dir)
	if err != nil || info.Generation != 1 || info.Outcome() != "clean" {
		t.Fatalf("recovery after mid-persist kill: gen %d (%s), %v",
			info.Generation, info.Outcome(), err)
	}
	if ok, _ := store.Equal(st, before); !ok {
		t.Fatal("previous generation damaged by the killed persist")
	}

	// The surviving process retries: the committed state becomes durable.
	if gen, err := m.PersistNow(context.Background()); err != nil || gen != 2 {
		t.Fatalf("retry persist: gen %d, %v", gen, err)
	}
	st, info, err = LoadState(dir)
	if err != nil || info.Generation != 2 {
		t.Fatalf("post-retry recovery: gen %d, %v", info.Generation, err)
	}
	if ok, _ := store.Equal(unstamped(st), m.SnapshotState()); !ok {
		t.Fatal("retried persist not bit-identical to live state")
	}
}

// Store metrics: generation gauge and persist counters appear on the
// registry once both EnableMetrics and EnablePersistence have run, in
// either order, and ObserveRecovery records the scan outcome.
func TestMaintainerStoreMetrics(t *testing.T) {
	m, dir := persistentMaintainer(t)
	reg := NewMetrics()
	m.EnableMetrics(reg) // persistence first, metrics second
	if _, err := m.PersistNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, info, err := LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	ObserveRecovery(reg, info)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"catapult_store_generation 2",
		"catapult_store_persists_total 1",
		`catapult_store_recovery_total{outcome="clean"} 1`,
		"catapult_store_recovered_generation 2",
		"catapult_store_recovery_skipped_generations 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDifferentialWarmRestartState pins the durability contract across
// parallelism: the snapshot a maintainer persists is byte-identical no
// matter how many workers mined it, and a warm restart re-encodes to the
// same bytes — state crosses the crash boundary bit-for-bit, at any
// GOMAXPROCS on either side.
func TestDifferentialWarmRestartState(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	db := func() *DB { return dataset.AIDSLike(20, 11) }
	cfg := Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 5, Gamma: 5},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 8, MinSupport: 0.2},
		Seed:       11,
	}

	var ref []byte
	for _, w := range []int{1, 4, prev} {
		runtime.GOMAXPROCS(w)
		m, err := NewMaintainerCtx(context.Background(), db(), cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := store.Encode(m.SnapshotState())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(enc, ref) {
			t.Fatalf("snapshot bytes diverge at GOMAXPROCS=%d", w)
		}

		// Round-trip through disk and a warm restart at a different worker
		// count: the re-encoded state must still be the same bytes.
		dir := t.TempDir()
		if _, err := SaveState(context.Background(), dir, m.SnapshotState()); err != nil {
			t.Fatal(err)
		}
		st, _, err := LoadState(dir)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := NewMaintainerFromState(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reenc, err := store.Encode(warm.SnapshotState())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, ref) {
			t.Fatalf("warm-restart re-encode diverges at GOMAXPROCS=%d", w)
		}
	}
}
