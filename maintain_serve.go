package catapult

import (
	"context"

	"repro/internal/graph"
	"repro/internal/serve"
)

// ServeState captures the maintainer's current state as a serving snapshot
// input. The returned State aliases the maintainer's internal slices, which
// is safe because refreshes replace them wholesale (copy-and-swap) and
// never mutate them in place — a captured State stays internally consistent
// forever, it just goes stale.
func (m *Maintainer) ServeState() serve.State {
	return serve.State{
		Dataset:  m.db.Name,
		DB:       m.db,
		Patterns: m.patterns,
		Clusters: m.clusters,
	}
}

// ServeSource adapts the maintainer to the serving layer's Source
// interface. The Maintainer itself is not safe for concurrent use, so the
// adapter serializes State and Refresh calls behind the maintainer's own
// mutex — shared with PersistNow's shutdown flush, so a final snapshot
// never interleaves with a refresh. The serving tier's lock-free read
// path never touches it — readers answer from the tenant's published
// snapshot, and only snapshot builds and refreshes go through here.
func (m *Maintainer) ServeSource() serve.Source {
	return &maintainerSource{m: m}
}

type maintainerSource struct {
	m *Maintainer
}

func (s *maintainerSource) State() serve.State {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.m.ServeState()
}

func (s *maintainerSource) Refresh(ctx context.Context, gs []*graph.Graph) error {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	_, err := s.m.AddGraphsCtx(ctx, gs)
	return err
}
