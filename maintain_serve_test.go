package catapult

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/serve"
)

// The root-level integration: a Maintainer behind ServeSource drives the
// serving layer end to end — initial snapshot from the maintainer's state,
// refresh through AddGraphsCtx, and last-good survival on a failed refresh.
func TestMaintainerServeSource(t *testing.T) {
	m := testMaintainer(t)
	s := serve.NewServer(serve.Options{})
	if _, err := s.AddTenant(serve.DefaultTenant, m.ServeSource()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/patterns")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patterns: %d", resp.StatusCode)
	}
	var pr serve.PatternsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Stats.Version != 1 || pr.Stats.Graphs != 30 {
		t.Fatalf("initial snapshot wrong: %+v", pr.Stats)
	}
	if len(pr.Patterns) != len(m.Patterns()) {
		t.Fatalf("served %d patterns, maintainer has %d", len(pr.Patterns), len(m.Patterns()))
	}

	// Refresh with a batch of new graphs, posted in transaction text.
	extra := dataset.AIDSLike(4, 99)
	var batch strings.Builder
	if err := WriteDB(&batch, extra); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.Post(srv.URL+"/v1/tenants/default/refresh", "text/plain",
		strings.NewReader(batch.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var rr serve.RefreshResponse
	if err := json.NewDecoder(resp3.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("refresh: %d", resp3.StatusCode)
	}
	if rr.Stats.Version != 2 || rr.Stats.Graphs != 34 || rr.Added != 4 {
		t.Fatalf("refresh response wrong: %+v added=%d", rr.Stats, rr.Added)
	}
	if m.DB().Len() != 34 {
		t.Fatalf("maintainer did not absorb batch: %d graphs", m.DB().Len())
	}
}

// A refresh that fails inside the Maintainer (cancelled context) must leave
// the tenant serving the last-good snapshot and the maintainer queueing the
// batch for retry.
func TestMaintainerServeSourceFailedRefresh(t *testing.T) {
	m := testMaintainer(t)
	src := m.ServeSource()
	s := serve.NewServer(serve.Options{})
	tn, err := s.AddTenant("t", src)
	if err != nil {
		t.Fatal(err)
	}
	before := tn.Snapshot().Stats()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	extra := dataset.AIDSLike(3, 7)
	if _, err := tn.Refresh(cancelled, extra.Graphs); err == nil {
		t.Fatal("refresh under cancelled context succeeded")
	}
	if got := tn.Snapshot().Stats(); got != before {
		t.Errorf("snapshot changed across failed refresh: %+v -> %+v", before, got)
	}
	if m.Pending() != 3 {
		t.Errorf("maintainer pending = %d, want 3 (batch queued for retry)", m.Pending())
	}

	// The queued batch goes through on the next successful refresh.
	if _, err := tn.Refresh(context.Background(), nil); err != nil {
		t.Fatalf("retry refresh: %v", err)
	}
	after := tn.Snapshot().Stats()
	if after.Version != before.Version+1 || after.Graphs != before.Graphs+3 {
		t.Errorf("retry refresh snapshot wrong: %+v", after)
	}
	if m.Pending() != 0 {
		t.Errorf("pending not drained: %d", m.Pending())
	}
}
