package catapult

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
)

func testMaintainer(t *testing.T) *Maintainer {
	t.Helper()
	db := dataset.AIDSLike(30, 15)
	m, err := NewMaintainer(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 5, Gamma: 5},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 8, MinSupport: 0.2},
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A failed insert must leave the db/clusters/csgs/patterns quadruple exactly
// as it was: the maintainer keeps serving the last-good pattern set and the
// batch lands on the retry queue.
func TestMaintainerTransactionalRollback(t *testing.T) {
	m := testMaintainer(t)

	dbBefore := m.db
	patternsBefore := m.patterns
	csgsSnap := m.csgs
	clustersBefore := make([][]int, len(m.clusters))
	for i, c := range m.clusters {
		clustersBefore[i] = append([]int(nil), c...)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	extra := dataset.AIDSLike(5, 99)
	if _, err := m.AddGraphsCtx(cancelled, extra.Graphs); err == nil {
		t.Fatal("insert under cancelled context succeeded, want error")
	}

	if m.db != dbBefore {
		t.Error("db swapped despite failed insert")
	}
	if len(m.patterns) != len(patternsBefore) {
		t.Fatalf("pattern count changed: %d -> %d", len(patternsBefore), len(m.patterns))
	}
	for i := range m.patterns {
		if m.patterns[i] != patternsBefore[i] {
			t.Errorf("pattern %d replaced despite failed insert", i)
		}
	}
	if len(m.clusters) != len(clustersBefore) {
		t.Fatalf("cluster count changed: %d -> %d", len(clustersBefore), len(m.clusters))
	}
	for i := range m.clusters {
		if len(m.clusters[i]) != len(clustersBefore[i]) {
			t.Errorf("cluster %d membership changed", i)
			continue
		}
		for j := range m.clusters[i] {
			if m.clusters[i][j] != clustersBefore[i][j] {
				t.Errorf("cluster %d member %d changed", i, j)
			}
		}
	}
	for i := range m.csgs {
		if m.csgs[i] != csgsSnap[i] {
			t.Errorf("csg %d replaced despite failed insert", i)
		}
	}

	if m.Pending() != 5 {
		t.Errorf("Pending() = %d, want 5", m.Pending())
	}
	if m.LastErr() == nil {
		t.Error("LastErr() nil after failed insert")
	}
	if m.NextRetry().IsZero() {
		t.Error("NextRetry() zero after failed insert")
	}

	// The queued batch is folded into the next successful refresh.
	if _, err := m.AddGraphsCtx(context.Background(), nil); err != nil {
		t.Fatalf("retrying queued batch: %v", err)
	}
	if m.DB().Len() != 35 {
		t.Errorf("db size after recovery = %d, want 35", m.DB().Len())
	}
	if m.Pending() != 0 || m.LastErr() != nil || !m.NextRetry().IsZero() {
		t.Errorf("retry state not cleared: pending=%d lastErr=%v nextRetry=%v",
			m.Pending(), m.LastErr(), m.NextRetry())
	}
	if len(m.Patterns()) == 0 {
		t.Error("patterns lost after recovered insert")
	}
}

// Consecutive failures double the backoff delay up to the cap, RetryCtx
// refuses to run inside the window, and a successful retry resets the state.
func TestMaintainerRetryBackoff(t *testing.T) {
	m := testMaintainer(t)
	cur := time.Unix(1000, 0)
	m.now = func() time.Time { return cur }

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	extra := dataset.AIDSLike(5, 99)

	if _, err := m.AddGraphsCtx(cancelled, extra.Graphs); err == nil {
		t.Fatal("want failure under cancelled context")
	}
	if got, want := m.NextRetry().Sub(cur), retryBaseDelay; got != want {
		t.Errorf("first backoff = %v, want %v", got, want)
	}

	// Not due yet: RetryCtx must refuse without touching state.
	if _, err := m.RetryCtx(context.Background()); !errors.Is(err, ErrRetryNotDue) {
		t.Fatalf("RetryCtx inside window: err = %v, want ErrRetryNotDue", err)
	}
	if m.Pending() != 5 {
		t.Errorf("Pending() = %d after refused retry, want 5", m.Pending())
	}

	// Due, but the retry itself fails again: delay doubles and the batch is
	// not duplicated.
	cur = cur.Add(retryBaseDelay)
	if _, err := m.RetryCtx(cancelled); err == nil {
		t.Fatal("want failure on retry under cancelled context")
	}
	if got, want := m.NextRetry().Sub(cur), 2*retryBaseDelay; got != want {
		t.Errorf("second backoff = %v, want %v", got, want)
	}
	if m.Pending() != 5 {
		t.Errorf("Pending() = %d after failed retry, want 5 (batch duplicated?)", m.Pending())
	}

	// Due again, valid context: the refresh lands.
	cur = cur.Add(2 * retryBaseDelay)
	if _, err := m.RetryCtx(context.Background()); err != nil {
		t.Fatalf("due retry failed: %v", err)
	}
	if m.DB().Len() != 35 {
		t.Errorf("db size after retry = %d, want 35", m.DB().Len())
	}
	if m.Pending() != 0 || m.failures != 0 {
		t.Errorf("retry state not reset: pending=%d failures=%d", m.Pending(), m.failures)
	}
}

// TestMaintainerRetryBackoffFullSchedule drives the fake clock through the
// entire capped-exponential ladder, failure by failure, pinning three
// deterministic properties at every rung k:
//
//  1. the scheduled delay is exactly min(retryBaseDelay·2^(k-1),
//     retryMaxDelay) — the cap engages at the precise rung the doubling
//     crosses it, never earlier;
//  2. one nanosecond before the deadline RetryCtx still refuses with
//     ErrRetryNotDue and leaves the retry state untouched;
//  3. exactly at the deadline the retry is due (the window is closed-open:
//     due means now >= nextRetry, not now > nextRetry).
//
// A successful retry at the top of the ladder must then reset it: the next
// failure starts over at retryBaseDelay.
func TestMaintainerRetryBackoffFullSchedule(t *testing.T) {
	m := testMaintainer(t)
	cur := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return cur }

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	extra := dataset.AIDSLike(2, 5)
	if _, err := m.AddGraphsCtx(cancelled, extra.Graphs); err == nil {
		t.Fatal("want failure under cancelled context")
	}

	const rungs = 25 // well past the rung where the cap engages (k=10)
	for k := 1; k <= rungs; k++ {
		want := retryBaseDelay << (k - 1)
		if want > retryMaxDelay {
			want = retryMaxDelay
		}
		if got := m.NextRetry().Sub(cur); got != want {
			t.Fatalf("rung %d: backoff = %v, want %v", k, got, want)
		}
		if m.failures != k {
			t.Fatalf("rung %d: failures = %d", k, m.failures)
		}

		// 1ns before the deadline: still refused, nothing disturbed.
		pendingBefore, nextBefore := m.Pending(), m.NextRetry()
		cur = nextBefore.Add(-time.Nanosecond)
		if _, err := m.RetryCtx(cancelled); !errors.Is(err, ErrRetryNotDue) {
			t.Fatalf("rung %d, 1ns early: err = %v, want ErrRetryNotDue", k, err)
		}
		if m.Pending() != pendingBefore || !m.NextRetry().Equal(nextBefore) || m.failures != k {
			t.Fatalf("rung %d: refused retry disturbed state", k)
		}

		// Exactly at the deadline: due. The attempt runs (and fails again,
		// climbing to the next rung).
		cur = nextBefore
		if _, err := m.RetryCtx(cancelled); err == nil || errors.Is(err, ErrRetryNotDue) {
			t.Fatalf("rung %d, at deadline: err = %v, want a real attempt failure", k, err)
		}
	}

	// Recovery at the top of the ladder: the queued batch lands and the
	// schedule resets to the base delay on the next failure.
	cur = m.NextRetry()
	if _, err := m.RetryCtx(context.Background()); err != nil {
		t.Fatalf("recovery retry: %v", err)
	}
	if m.DB().Len() != 32 || m.Pending() != 0 || m.failures != 0 {
		t.Fatalf("recovery did not land/reset: len=%d pending=%d failures=%d",
			m.DB().Len(), m.Pending(), m.failures)
	}
	if _, err := m.AddGraphsCtx(cancelled, dataset.AIDSLike(1, 6).Graphs); err == nil {
		t.Fatal("want failure under cancelled context")
	}
	if got := m.NextRetry().Sub(cur); got != retryBaseDelay {
		t.Errorf("post-recovery backoff = %v, want base %v (ladder not reset)", got, retryBaseDelay)
	}
}

func TestMaintainerBackoffCapped(t *testing.T) {
	m := testMaintainer(t)
	cur := time.Unix(2000, 0)
	m.now = func() time.Time { return cur }

	// Simulate many consecutive failures; the delay must never exceed the
	// cap and must never overflow into a non-positive duration.
	for i := 0; i < 40; i++ {
		m.queueFailed(nil, context.Canceled)
		d := m.NextRetry().Sub(cur)
		if d <= 0 || d > retryMaxDelay {
			t.Fatalf("failure %d: backoff %v out of (0, %v]", i+1, d, retryMaxDelay)
		}
	}
	if got := m.NextRetry().Sub(cur); got != retryMaxDelay {
		t.Errorf("backoff after 40 failures = %v, want cap %v", got, retryMaxDelay)
	}
}
