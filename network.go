package catapult

// Large-network entry points: canned-pattern selection over one big
// graph instead of a database of small graphs (the successor-work
// scenario, arXiv 2107.09952). The network is streamed into a frozen CSR
// (LoadNetworkCtx / LoadNetworkBinaryCtx), decomposed into capped edge
// regions with sampled representative subgraphs (internal/bignet), and
// the resulting synthetic region-summary DB runs through the standard
// cluster→CSG→select pipeline unchanged (SelectCtx).

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bignet"
	"repro/internal/pipeline"
)

// NetworkResult is the output of SelectNetworkCtx: the standard pipeline
// Result over the region-summary database, plus the network-specific
// artifacts.
type NetworkResult struct {
	*Result
	// Network is the frozen input network.
	Network *Frozen
	// Decomposition holds the edge partition and the synthetic summary
	// DB the pipeline ran on (also reachable as Result.WorkingDB).
	Decomposition *NetworkDecomposition
	// DecomposeTime is the wall-clock duration of partitioning plus
	// summarization.
	DecomposeTime time.Duration
}

// LoadNetworkCtx streams a SNAP-style text edge list ("u v" lines,
// optional "v id label" declarations, "#" comments) into a frozen CSR
// network. Malformed lines, self-loops and duplicates are counted in the
// returned stats and skipped, never fatal. Progress is reported on any
// Observer installed on ctx via pipeline.WithTrace.
func LoadNetworkCtx(ctx context.Context, r io.Reader, opts NetworkLoadOptions) (*Frozen, *NetworkLoadStats, error) {
	return bignet.LoadEdgeListCtx(ctx, r, opts)
}

// LoadNetworkBinaryCtx streams the compact binary network format
// (written by WriteNetworkBinary) into a frozen CSR network.
func LoadNetworkBinaryCtx(ctx context.Context, r io.Reader, opts NetworkLoadOptions) (*Frozen, *NetworkLoadStats, error) {
	return bignet.LoadBinaryCtx(ctx, r, opts)
}

// WriteNetworkBinary dumps a frozen network in the compact binary format
// read by LoadNetworkBinaryCtx.
func WriteNetworkBinary(w io.Writer, f *Frozen) error {
	return bignet.WriteBinary(w, f)
}

// DecomposeNetworkCtx partitions the frozen network into capped edge
// regions and samples per-region representative subgraphs into a
// synthetic DB, without running selection. SelectNetworkCtx composes
// this with SelectCtx; call it directly to inspect or reuse a
// decomposition.
func DecomposeNetworkCtx(ctx context.Context, f *Frozen, cfg Config) (*NetworkDecomposition, error) {
	cfg.defaults()
	ctx = pipeline.WithTrace(ctx, pipeline.Tee(cfg.Observer, pipeline.From(ctx)))
	return bignet.Decompose(ctx, f, cfg.Network)
}

// SelectNetworkCtx runs canned-pattern selection over one large network:
// decompose into region summaries (Config.Network), then run the
// standard pipeline (Config.Budget/Clustering/Selection/...) on the
// summary DB. Cancellation, degradation and observability behave exactly
// as in SelectCtx; the decomposition stages additionally report
// net-partition / net-summarize spans and bignet_* counters.
func SelectNetworkCtx(stdctx context.Context, f *Frozen, cfg Config) (*NetworkResult, error) {
	cfg.defaults()
	if f == nil {
		return nil, fmt.Errorf("catapult: nil network")
	}

	// The decomposition runs under its own recorder (merged into the
	// final Counters below) teed with the caller's observer and any
	// tracer already on the context.
	rec := pipeline.NewRecorder()
	dctx := pipeline.WithTrace(stdctx, pipeline.Tee(rec, cfg.Observer, pipeline.From(stdctx)))
	start := time.Now()
	dec, err := bignet.Decompose(dctx, f, cfg.Network)
	if err != nil {
		return nil, err
	}
	decomposeTime := time.Since(start)
	if dec.DB.Len() == 0 {
		return nil, fmt.Errorf("catapult: network produced no region summaries (empty network?)")
	}

	// SelectCtx tees its own recorder with the caller's observer and
	// context tracer; hand it the original context (not dctx, whose tee
	// includes rec) so decomposition counters are not double-counted.
	res, err := SelectCtx(stdctx, dec.DB, cfg)
	if err != nil {
		return nil, err
	}
	for c, n := range rec.Counters() {
		res.Counters[c] += n
	}
	return &NetworkResult{
		Result:        res,
		Network:       f,
		Decomposition: dec,
		DecomposeTime: decomposeTime,
	}, nil
}
