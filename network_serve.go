package catapult

// NetworkSource fronts a large network for the serving layer: the tenant
// state is the full selection pipeline re-run against the network's edge
// stream. A refresh reloads the network through the supplied loader,
// decomposes it and re-selects patterns; only a fully successful run
// replaces the served state, so readers stay on the last-good snapshot
// when a reload fails mid-stream (cancellation, I/O error, selection
// failure) — the same transactional contract the Maintainer source
// keeps.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/serve"
)

// NetworkLoader produces the current frozen network, typically by
// opening and streaming the tenant's edge file via LoadNetworkCtx. It is
// called once per refresh; the passed context carries cancellation and
// any installed Observer.
type NetworkLoader func(ctx context.Context) (*Frozen, error)

// NetworkSource serves a large-network tenant. Create with
// NewNetworkSourceCtx and register on a PatternServer with AddTenant.
type NetworkSource struct {
	load NetworkLoader
	cfg  Config

	mu    sync.Mutex
	state serve.State
}

// NewNetworkSourceCtx builds a network-backed serving source and runs
// the initial load → decompose → select so the source is immediately
// servable. cfg.Network.Name labels the dataset.
func NewNetworkSourceCtx(ctx context.Context, load NetworkLoader, cfg Config) (*NetworkSource, error) {
	s := &NetworkSource{load: load, cfg: cfg}
	if err := s.reload(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// State implements serve.Source.
func (s *NetworkSource) State() serve.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Refresh implements serve.Source: a nil batch reloads the network from
// its edge stream end to end. Per-graph batches are not meaningful for a
// network tenant (the network is the unit of refresh) and are rejected,
// leaving the served state untouched.
func (s *NetworkSource) Refresh(ctx context.Context, gs []*graph.Graph) error {
	if len(gs) > 0 {
		return fmt.Errorf("catapult: network source refreshes from its edge stream; per-graph batches are not supported")
	}
	return s.reload(ctx)
}

// reload runs the full network pipeline and swaps the served state in
// only on complete success.
func (s *NetworkSource) reload(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.load(ctx)
	if err != nil {
		return err
	}
	res, err := SelectNetworkCtx(ctx, f, s.cfg)
	if err != nil {
		return err
	}
	s.state = serve.State{
		Dataset:  res.WorkingDB.Name,
		DB:       res.WorkingDB,
		Patterns: res.Patterns,
		Clusters: res.Clusters,
	}
	return nil
}
