package catapult

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// Tests for the staged pipeline contract: cancellation through every layer,
// trace observability, recorder-driven timings and seed propagation.

func stagedConfig() Config {
	return Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 6, Gamma: 8},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.2},
		Seed:       7,
	}
}

// cancelOnStage cancels the run when the given stage starts.
type cancelOnStage struct {
	stage  pipeline.Stage
	cancel context.CancelFunc
}

func (c *cancelOnStage) StageStart(s pipeline.Stage) {
	if s == c.stage {
		c.cancel()
	}
}
func (c *cancelOnStage) StageEnd(pipeline.Stage, time.Duration) {}
func (c *cancelOnStage) Add(pipeline.Counter, int64)            {}

func TestSelectCtxCancelMidPipeline(t *testing.T) {
	db := dataset.AIDSLike(40, 1)
	// Cancel at different depths of the pipeline: CSG construction (inside
	// the parallel closure loop) and pattern selection (the greedy loop).
	for _, stage := range []pipeline.Stage{pipeline.StageCSG, pipeline.StageSelect} {
		t.Run(string(stage), func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ctx = pipeline.WithTrace(ctx, &cancelOnStage{stage: stage, cancel: cancel})

			res, err := SelectCtx(ctx, db, stagedConfig())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Errorf("cancelled run returned a partial result: %+v", res)
			}
			// All workers must have exited: no goroutine leak.
			for i := 0; ; i++ {
				if runtime.NumGoroutine() <= before {
					break
				}
				if i > 100 {
					t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

func TestSelectCtxAlreadyCancelled(t *testing.T) {
	db := dataset.EMolLike(20, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SelectCtx(ctx, db, stagedConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
}

func TestSelectCtxDeadlineExceeded(t *testing.T) {
	db := dataset.AIDSLike(40, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	res, err := SelectCtx(ctx, db, stagedConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Error("timed-out run returned a result")
	}
}

func TestSelectCtxTraceSequenceAndCounters(t *testing.T) {
	db := dataset.AIDSLike(40, 1)
	rec := pipeline.NewRecorder()
	ctx := pipeline.WithTrace(context.Background(), rec)

	res, err := SelectCtx(ctx, db, stagedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns selected")
	}

	// Stages are recorded in completion order: nested stages finish before
	// the umbrella clustering span; CSG construction and pattern selection
	// follow.
	want := []pipeline.Stage{
		pipeline.StageMine, pipeline.StageCoarse, pipeline.StageFine,
		pipeline.StageClustering, pipeline.StageCSG, pipeline.StageSelect,
	}
	got := rec.Stages()
	if len(got) != len(want) {
		t.Fatalf("stage sequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}

	for _, c := range []pipeline.Counter{
		pipeline.CounterTreesMined,
		pipeline.CounterClosureMerges,
		pipeline.CounterWalks,
		pipeline.CounterCandidatesGenerated,
		pipeline.CounterCandidatesAccepted,
		pipeline.CounterVF2Calls,
		// Coverage-engine activity: scoring misses at least once, and the
		// weight update re-asks the winning pattern's verdicts, which are
		// guaranteed memo hits.
		pipeline.CounterCoverMisses,
		pipeline.CounterCoverHits,
	} {
		if rec.Total(c) <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, rec.Total(c))
		}
	}
	// The facade surfaces the same totals on the result.
	for c, n := range rec.Counters() {
		if res.Counters[c] != n {
			t.Errorf("Result.Counters[%s] = %d, recorder says %d", c, res.Counters[c], n)
		}
	}
	if acc := rec.Total(pipeline.CounterCandidatesAccepted); acc != int64(len(res.Patterns)) {
		t.Errorf("accepted counter %d != %d selected patterns", acc, len(res.Patterns))
	}

	// Result timings come from the recorded spans.
	if res.ClusteringTime != rec.Duration(pipeline.StageClustering) {
		t.Errorf("ClusteringTime %v != recorded %v",
			res.ClusteringTime, rec.Duration(pipeline.StageClustering))
	}
	if res.PatternTime != rec.Duration(pipeline.StageSelect) {
		t.Errorf("PatternTime %v != recorded %v",
			res.PatternTime, rec.Duration(pipeline.StageSelect))
	}
}

func TestSelectCtxMatchesSelect(t *testing.T) {
	// Context plumbing must not perturb determinism: an uncancelled
	// SelectCtx run is bit-identical to the legacy Select.
	db := dataset.AIDSLike(40, 1)
	a, err := Select(db, stagedConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectCtx(context.Background(), db, stagedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if a.Patterns[i].Graph.String() != b.Patterns[i].Graph.String() {
			t.Errorf("pattern %d differs", i)
		}
	}
}

// TestSelectEngineOnOffIdentical is the facade-level differential check:
// full pipeline runs with the coverage engine enabled vs disabled are
// byte-identical across several seeds (the engine accelerates scoring but
// must not perturb selection).
func TestSelectEngineOnOffIdentical(t *testing.T) {
	db := dataset.AIDSLike(40, 1)
	for _, seed := range []int64{7, 19, 42} {
		cfg := stagedConfig()
		cfg.Seed = seed
		on, err := Select(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DisableCoverEngine = true
		off, err := Select(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(on.Patterns) != len(off.Patterns) {
			t.Fatalf("seed %d: pattern counts differ: %d (engine) vs %d (naive)",
				seed, len(on.Patterns), len(off.Patterns))
		}
		for i := range on.Patterns {
			a, b := on.Patterns[i], off.Patterns[i]
			if a.Graph.String() != b.Graph.String() || a.Score != b.Score ||
				a.Ccov != b.Ccov || a.Lcov != b.Lcov || a.Div != b.Div || a.Cog != b.Cog {
				t.Errorf("seed %d: pattern %d differs:\n engine: %v score=%v\n naive:  %v score=%v",
					seed, i, a.Graph, a.Score, b.Graph, b.Score)
			}
		}
		if on.Counters[pipeline.CounterCoverMisses] == 0 {
			t.Errorf("seed %d: engine run reported no cover misses", seed)
		}
		if n := off.Counters[pipeline.CounterCoverMisses]; n != 0 {
			t.Errorf("seed %d: disabled engine still reported %d cover misses", seed, n)
		}
	}
}

// cancelOnNthVF2 cancels the run on the n-th VF2 search observed after
// pattern selection has started — i.e. in the middle of a coverage-engine
// verification batch.
type cancelOnNthVF2 struct {
	cancel   context.CancelFunc
	n        int64
	inSelect atomic.Bool
	seen     atomic.Int64
}

func (c *cancelOnNthVF2) StageStart(s pipeline.Stage) {
	if s == pipeline.StageSelect {
		c.inSelect.Store(true)
	}
}
func (c *cancelOnNthVF2) StageEnd(pipeline.Stage, time.Duration) {}
func (c *cancelOnNthVF2) Add(ctr pipeline.Counter, _ int64) {
	if ctr == pipeline.CounterVF2Calls && c.inSelect.Load() {
		if c.seen.Add(1) == c.n {
			c.cancel()
		}
	}
}

func TestSelectCtxCancelDuringCoverBatch(t *testing.T) {
	db := dataset.AIDSLike(40, 1)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = pipeline.WithTrace(ctx, &cancelOnNthVF2{cancel: cancel, n: 3})

	res, err := SelectCtx(ctx, db, stagedConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled run returned a partial result: %+v", res)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConfigDefaultsSeedPropagation(t *testing.T) {
	// Unset sub-seeds inherit the top-level seed.
	c := Config{Seed: 42}
	c.defaults()
	if c.Clustering.Seed != 42 || c.Selection.Seed != 42 {
		t.Errorf("unset sub-seeds = (%d, %d), want (42, 42)",
			c.Clustering.Seed, c.Selection.Seed)
	}

	// Explicit non-zero sub-seeds are preserved.
	c = Config{Seed: 42, Clustering: cluster.Config{Seed: 7}, Selection: core.Options{Seed: 9}}
	c.defaults()
	if c.Clustering.Seed != 7 || c.Selection.Seed != 9 {
		t.Errorf("explicit sub-seeds overwritten: (%d, %d), want (7, 9)",
			c.Clustering.Seed, c.Selection.Seed)
	}

	// A deliberate zero sub-seed (SeedSet) must NOT be overwritten — the
	// regression this guards: Seed == 0 used to be indistinguishable from
	// "not configured".
	c = Config{
		Seed:       42,
		Clustering: cluster.Config{Seed: 0, SeedSet: true},
		Selection:  core.Options{Seed: 0, SeedSet: true},
	}
	c.defaults()
	if c.Clustering.Seed != 0 || c.Selection.Seed != 0 {
		t.Errorf("pinned zero sub-seeds overwritten: (%d, %d), want (0, 0)",
			c.Clustering.Seed, c.Selection.Seed)
	}
}

func TestSamplingEffectiveSizesSumToDatabase(t *testing.T) {
	// Fine sub-clusters of a lazily-sampled cluster carry count × inflate
	// effective sizes; since inflate = |C| / |sampled| and the fine split
	// partitions the sampled members, each cluster's sub-sizes sum exactly
	// to its pre-sampling size — and the grand total to |D|.
	db := dataset.AIDSLike(80, 55)
	s := DefaultSampling()
	s.Epsilon = 0.15
	s.Rho = 0.1
	s.E = 0.25
	res, err := Select(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.15},
		Sampling:   s,
		Seed:       57,
	})
	if err != nil {
		t.Fatal(err)
	}
	memberTotal := 0
	effTotal := 0.0
	for i, m := range res.Clusters {
		memberTotal += len(m)
		effTotal += res.EffectiveSizes[i]
	}
	if memberTotal >= db.Len() {
		t.Skip("lazy sampling did not engage at this size; nothing to verify")
	}
	if diff := effTotal - float64(db.Len()); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("effective sizes sum to %v, want exactly |D| = %d", effTotal, db.Len())
	}
}
