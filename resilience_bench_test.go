// Benchmark gate for anytime selection quality (internal/resilience): how
// much subgraph coverage the degraded pipeline retains when it is deadlined
// at fractions of its unconstrained wall clock. `make bench-gate-resilience`
// runs it and writes BENCH_resilience.json.
package catapult_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	catapult "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/resilience"
)

// TestResilienceBenchGate measures the anytime quality curve: the pipeline
// is run unconstrained to calibrate wall clock and full-coverage scov, then
// re-run under deadlines of 25% / 50% / 75% of that wall clock. Each
// degraded run must return a non-empty pattern set; the retained scov
// fraction is recorded in BENCH_resilience.json. Opt-in via
// BENCH_GATE_RESILIENCE=1 so regular `go test ./...` stays fast.
func TestResilienceBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GATE_RESILIENCE") == "" {
		t.Skip("set BENCH_GATE_RESILIENCE=1 to run the resilience benchmark gate")
	}
	db := dataset.AIDSLike(40, 1)
	cfg := catapult.Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 6, Gamma: 8},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.2},
		Seed:       7,
	}

	// Warm up once, then calibrate the unconstrained run.
	if _, err := catapult.Select(db, cfg); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	full, err := catapult.Select(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	fullScov := core.Scov(db, full.PatternGraphs())
	if fullScov <= 0 {
		t.Fatalf("unconstrained run has zero scov (%d patterns)", len(full.Patterns))
	}

	type point struct {
		Fraction      float64 `json:"fraction"`
		DeadlineMs    float64 `json:"deadline_ms"`
		WallMs        float64 `json:"wall_ms"`
		Patterns      int     `json:"patterns"`
		Scov          float64 `json:"scov"`
		ScovRetained  float64 `json:"scov_retained"`
		Degraded      bool    `json:"degraded"`
		DegradedNotes string  `json:"degraded_notes,omitempty"`
	}
	report := struct {
		FullWallMs   float64 `json:"full_wall_ms"`
		FullPatterns int     `json:"full_patterns"`
		FullScov     float64 `json:"full_scov"`
		Points       []point `json:"points"`
	}{
		FullWallMs:   float64(wall.Microseconds()) / 1e3,
		FullPatterns: len(full.Patterns),
		FullScov:     fullScov,
	}

	for _, frac := range []float64{0.25, 0.50, 0.75} {
		deadline := time.Duration(float64(wall) * frac)
		dcfg := cfg
		dcfg.Degradation = resilience.Config{Enabled: true, Deadline: deadline}
		dstart := time.Now()
		res, err := catapult.Select(db, dcfg)
		if err != nil {
			t.Fatalf("deadline %.0f%%: errored instead of degrading: %v", frac*100, err)
		}
		dwall := time.Since(dstart)
		if len(res.Patterns) == 0 {
			t.Errorf("deadline %.0f%% (%v): empty pattern set; health:\n%s",
				frac*100, deadline, res.Health)
		}
		scov := core.Scov(db, res.PatternGraphs())
		p := point{
			Fraction:     frac,
			DeadlineMs:   float64(deadline.Microseconds()) / 1e3,
			WallMs:       float64(dwall.Microseconds()) / 1e3,
			Patterns:     len(res.Patterns),
			Scov:         scov,
			ScovRetained: scov / fullScov,
			Degraded:     res.Degraded(),
		}
		if res.Health != nil && res.Degraded() {
			p.DegradedNotes = fmt.Sprintf("counters: %v", res.Health.Counters)
		}
		report.Points = append(report.Points, p)
		fmt.Printf("resilience gate: %.0f%% deadline (%v): %d patterns, scov %.3f (%.0f%% retained), degraded=%v\n",
			frac*100, deadline.Round(time.Millisecond), p.Patterns, p.Scov, p.ScovRetained*100, p.Degraded)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_resilience.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("resilience gate: full run %v, scov %.3f, %d patterns\n",
		wall.Round(time.Millisecond), fullScov, len(full.Patterns))
}
