// Benchmark gate for warm restart: recovering the full serving state from
// a CSNAP1 snapshot (LoadState + NewMaintainerFromState) must be at least
// 10x faster than mining it from scratch on the quickstart workload.
// `make bench-gate-restart` runs the gate, which writes BENCH_restart.json;
// opt-in via BENCH_GATE_RESTART=1 so regular `go test ./...` stays fast.
package catapult_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	catapult "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/store"
)

func TestRestartBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GATE_RESTART") == "" {
		t.Skip("set BENCH_GATE_RESTART=1 to run the restart benchmark gate")
	}

	// The quickstart workload: examples/quickstart's database and budget,
	// the same state the serving gate fronts.
	db := dataset.AIDSLike(200, 1)
	cfg := catapult.Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 8, Gamma: 10},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 20, MinSupport: 0.1},
		Seed:       42,
	}

	// Cold start: the full mining pipeline.
	coldStart := time.Now()
	m, err := catapult.NewMaintainerCtx(context.Background(), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	dir := t.TempDir()
	if err := m.EnablePersistence(dir); err != nil {
		t.Fatal(err)
	}

	// Warm start: recover the snapshot and rebuild a serving-ready
	// maintainer from it. Best of three, so a cold page cache or a GC
	// pause doesn't fail the gate spuriously.
	var warm time.Duration
	var snapshotBytes int
	for i := 0; i < 3; i++ {
		start := time.Now()
		st, info, err := catapult.LoadState(dir)
		if err != nil {
			t.Fatal(err)
		}
		w, err := catapult.NewMaintainerFromState(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if i == 0 || d < warm {
			warm = d
		}
		if info.Outcome() != "clean" {
			t.Fatalf("warm recovery not clean: %s", info.Outcome())
		}

		// The recovered maintainer must serve the identical state, not
		// just start fast: re-encoding its snapshot must reproduce the
		// persisted bytes.
		ok, err := store.Equal(w.SnapshotState(), m.SnapshotState())
		if err != nil || !ok {
			t.Fatalf("warm-started state not bit-identical to cold state (%v)", err)
		}
		if len(w.Patterns()) != len(m.Patterns()) || w.DB().Len() != db.Len() {
			t.Fatalf("warm state shape off: %d patterns, %d graphs",
				len(w.Patterns()), w.DB().Len())
		}
		enc, err := store.Encode(w.SnapshotState())
		if err != nil {
			t.Fatal(err)
		}
		snapshotBytes = len(enc)
	}

	report := struct {
		ColdStartMs   float64 `json:"cold_start_ms"`
		WarmStartMs   float64 `json:"warm_start_ms"`
		Speedup       float64 `json:"speedup"`
		SnapshotBytes int     `json:"snapshot_bytes"`
		Graphs        int     `json:"graphs"`
		Patterns      int     `json:"patterns"`
	}{
		float64(cold.Microseconds()) / 1000,
		float64(warm.Microseconds()) / 1000,
		float64(cold) / float64(warm),
		snapshotBytes,
		db.Len(),
		len(m.Patterns()),
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_restart.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("restart gate: cold %.1f ms, warm %.2f ms, speedup %.0fx, snapshot %d bytes\n",
		report.ColdStartMs, report.WarmStartMs, report.Speedup, report.SnapshotBytes)

	const minSpeedup = 10.0
	if report.Speedup < minSpeedup {
		t.Fatalf("warm restart speedup %.1fx below the %.0fx gate (cold %.1f ms, warm %.2f ms)",
			report.Speedup, minSpeedup, report.ColdStartMs, report.WarmStartMs)
	}
}
