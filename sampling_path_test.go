package catapult

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// Tests for the two-level sampling pipeline paths in clusterWithSampling.

func TestSamplingPathEagerLargerThanDB(t *testing.T) {
	// With the paper's default parameters the eager sample (6623) exceeds
	// a small database, so mining must fall back to the full-database
	// path and still produce a valid clustering.
	db := dataset.EMolLike(25, 51)
	res, err := Select(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 8, MinSupport: 0.2},
		Sampling:   DefaultSampling(),
		Seed:       53,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Clusters {
		total += len(m)
	}
	// Default lazy parameters keep every cluster whole at this size.
	if total != db.Len() {
		t.Errorf("cluster membership %d != %d", total, db.Len())
	}
	if len(res.Patterns) == 0 {
		t.Error("no patterns selected")
	}
}

func TestSamplingPathEffectiveSizesInflated(t *testing.T) {
	db := dataset.AIDSLike(80, 55)
	s := DefaultSampling()
	s.Epsilon = 0.15 // eager sample ~67 < 80: sampled mining path
	s.Rho = 0.1
	s.E = 0.25 // Cochran ~11: lazy sampling shrinks clusters
	res, err := Select(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.15},
		Sampling:   s,
		Seed:       57,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EffectiveSizes) != len(res.Clusters) {
		t.Fatalf("effective sizes %d != clusters %d", len(res.EffectiveSizes), len(res.Clusters))
	}
	memberTotal := 0.0
	effTotal := 0.0
	for i, m := range res.Clusters {
		memberTotal += float64(len(m))
		effTotal += res.EffectiveSizes[i]
		if res.EffectiveSizes[i] < float64(len(m))-1e-9 {
			t.Errorf("cluster %d effective size %v below member count %d",
				i, res.EffectiveSizes[i], len(m))
		}
	}
	if memberTotal >= float64(db.Len()) {
		t.Skip("lazy sampling did not engage at this size; nothing to verify")
	}
	// Inflated effective sizes must approximately restore the full
	// database mass.
	if effTotal < float64(db.Len())*0.9 || effTotal > float64(db.Len())*1.1 {
		t.Errorf("effective size total %v far from |D| = %d", effTotal, db.Len())
	}
}

// samplingConfig engages both sampling levels on AIDSLike(80, ...): the
// eager sample (~67) is below |D| = 80 and the Cochran size (~11) shrinks
// clusters.
func samplingConfig() Config {
	s := DefaultSampling()
	s.Epsilon = 0.15
	s.Rho = 0.1
	s.E = 0.25
	return Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.15},
		Sampling:   s,
		Seed:       57,
	}
}

// Mid-stage cancellation through the two-level sampling path: cancelling
// while the eager-sample mining, the lazy shrinking or the subsequent fine
// split is running must abort the whole run with the cancellation error, no
// partial result and no leaked workers — mirroring the cluster/CSG/select
// cancellation tests of the unsampled path.
func TestSamplingPathCancelMidStage(t *testing.T) {
	db := dataset.AIDSLike(80, 55)
	for _, stage := range []pipeline.Stage{
		pipeline.StageEagerSample, pipeline.StageLazySample, pipeline.StageFine,
	} {
		t.Run(string(stage), func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ctx = pipeline.WithTrace(ctx, &cancelOnStage{stage: stage, cancel: cancel})

			res, err := SelectCtx(ctx, db, samplingConfig())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Errorf("cancelled run returned a partial result: %+v", res)
			}
			for i := 0; ; i++ {
				if runtime.NumGoroutine() <= before {
					break
				}
				if i > 100 {
					t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// A deadline striking mid-sampling must surface as a clean
// context.DeadlineExceeded. The deadline is simulated deterministically by
// cancelling with a DeadlineExceeded cause when the lazy-sampling stage
// starts — the stages propagate context.Cause, so the caller sees the
// deadline error rather than a bare Canceled.
func TestSamplingPathDeadlineCausePropagates(t *testing.T) {
	db := dataset.AIDSLike(80, 55)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	ctx = pipeline.WithTrace(ctx, &cancelOnStage{
		stage:  pipeline.StageLazySample,
		cancel: func() { cancel(context.DeadlineExceeded) },
	})

	res, err := SelectCtx(ctx, db, samplingConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Errorf("timed-out run returned a partial result: %+v", res)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
