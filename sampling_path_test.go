package catapult

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Tests for the two-level sampling pipeline paths in clusterWithSampling.

func TestSamplingPathEagerLargerThanDB(t *testing.T) {
	// With the paper's default parameters the eager sample (6623) exceeds
	// a small database, so mining must fall back to the full-database
	// path and still produce a valid clustering.
	db := dataset.EMolLike(25, 51)
	res, err := Select(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 8, MinSupport: 0.2},
		Sampling:   DefaultSampling(),
		Seed:       53,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Clusters {
		total += len(m)
	}
	// Default lazy parameters keep every cluster whole at this size.
	if total != db.Len() {
		t.Errorf("cluster membership %d != %d", total, db.Len())
	}
	if len(res.Patterns) == 0 {
		t.Error("no patterns selected")
	}
}

func TestSamplingPathEffectiveSizesInflated(t *testing.T) {
	db := dataset.AIDSLike(80, 55)
	s := DefaultSampling()
	s.Epsilon = 0.15 // eager sample ~67 < 80: sampled mining path
	s.Rho = 0.1
	s.E = 0.25 // Cochran ~11: lazy sampling shrinks clusters
	res, err := Select(db, Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 4, Gamma: 3},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 10, MinSupport: 0.15},
		Sampling:   s,
		Seed:       57,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EffectiveSizes) != len(res.Clusters) {
		t.Fatalf("effective sizes %d != clusters %d", len(res.EffectiveSizes), len(res.Clusters))
	}
	memberTotal := 0.0
	effTotal := 0.0
	for i, m := range res.Clusters {
		memberTotal += float64(len(m))
		effTotal += res.EffectiveSizes[i]
		if res.EffectiveSizes[i] < float64(len(m))-1e-9 {
			t.Errorf("cluster %d effective size %v below member count %d",
				i, res.EffectiveSizes[i], len(m))
		}
	}
	if memberTotal >= float64(db.Len()) {
		t.Skip("lazy sampling did not engage at this size; nothing to verify")
	}
	// Inflated effective sizes must approximately restore the full
	// database mass.
	if effTotal < float64(db.Len())*0.9 || effTotal > float64(db.Len())*1.1 {
		t.Errorf("effective size total %v far from |D| = %d", effTotal, db.Len())
	}
}
