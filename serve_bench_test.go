// The serving bench gate behind `make bench-gate-serve`: a maintainer over
// the quickstart dataset (200 molecule-like graphs, budget b = (3, 8, 10))
// is put behind the pattern service, and a fleet of seeded simulated users
// replays panel fetches and containment searches against it over real HTTP.
// The gate writes BENCH_serve.json and fails when sustained throughput or
// tail latency regresses past the thresholds, or when any response is
// internally inconsistent (a torn read under concurrency is a correctness
// failure, not a performance number). Opt-in via BENCH_GATE_SERVE=1 so
// regular `go test ./...` stays fast.
package catapult_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"testing"
	"time"

	catapult "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// Gate thresholds: the quickstart dataset served to a thousand concurrent
// users must sustain interactive-GUI traffic on the bench runner.
const (
	serveGateUsers  = 1000
	serveGateMinRPS = 5000.0
	serveGateMaxP99 = 50 * time.Millisecond
)

func serveBenchEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestServeBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GATE_SERVE") == "" {
		t.Skip("set BENCH_GATE_SERVE=1 to run the serving benchmark gate")
	}

	// The quickstart workload: examples/quickstart's database and budget.
	db := dataset.AIDSLike(200, 1)
	m, err := catapult.NewMaintainerCtx(context.Background(), db, catapult.Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 8, Gamma: 10},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 20, MinSupport: 0.1},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := catapult.NewPatternServer(catapult.PatternServerOptions{})
	if _, err := s.AddTenant(serve.DefaultTenant, m.ServeSource()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	users := serveBenchEnvInt("SERVE_BENCH_USERS", serveGateUsers)
	seconds := serveBenchEnvInt("SERVE_BENCH_SECONDS", 10)

	// The bench runner is a small machine serving a thousand users from one
	// process; the tail there is dominated by GC mark phases over the
	// selection pipeline's retained heap, not by per-request serving cost.
	// Collect the build-phase garbage once, then let the steady-state serving
	// heap (which allocates little) grow further between cycles so marks are
	// rare during the measured window.
	runtime.GC()
	prevGC := debug.SetGCPercent(300)
	defer debug.SetGCPercent(prevGC)

	res, err := loadtest.Run(context.Background(), loadtest.Options{
		BaseURL: srv.URL,
		Users:   users,
		Seed:    42,
		// Think pacing: the user model's comprehension times compressed
		// to interactive stress level (~150-400ms between actions), which
		// offers well above the gate's throughput floor from 1k users
		// while keeping the workload open-loop — the shape real GUI
		// traffic has, and the shape under which p99 is meaningful.
		ThinkScale:     0.03,
		SearchFraction: 0.1,
		// 128 pooled connections for 1k users: each server-side connection
		// costs a goroutine plus buffers, and a thousand of them on a small
		// runner measures scheduler jitter instead of the service.
		MaxConns: 128,
		Duration: time.Duration(seconds) * time.Second,
		Ramp:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	report := struct {
		*loadtest.Result
		GateMinRPS   float64 `json:"gate_min_rps"`
		GateMaxP99Ms float64 `json:"gate_max_p99_ms"`
		Dataset      string  `json:"dataset"`
		Patterns     int     `json:"patterns"`
	}{res, serveGateMinRPS, float64(serveGateMaxP99.Milliseconds()), db.Name, len(m.Patterns())}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_serve.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("serve gate: %d users, %d requests, %.0f rps, p50=%v p90=%v p99=%v, shed=%d, torn=%d\n",
		res.Users, res.Requests, res.RPS, res.P50, res.P90, res.P99, res.Shed, res.TornReads)

	if res.Errors > 0 {
		t.Errorf("%d request errors (first: %s)", res.Errors, res.FirstError)
	}
	if !res.Consistent() {
		t.Errorf("consistency violated: %d torn reads, %d version regressions",
			res.TornReads, res.VersionRegressions)
	}
	if users == serveGateUsers { // thresholds are calibrated for the gate fleet
		if res.RPS < serveGateMinRPS {
			t.Errorf("sustained %.0f rps below the %.0f gate", res.RPS, serveGateMinRPS)
		}
		if res.P99 > serveGateMaxP99 {
			t.Errorf("p99 %v above the %v gate", res.P99, serveGateMaxP99)
		}
	}
}
