// The autocompletion bench gate behind `make bench-gate-suggest`: a
// maintainer over the quickstart dataset (200 molecule-like graphs, budget
// b = (3, 8, 10)) is put behind the pattern service, and a fleet of seeded
// simulated users formulates target queries keystroke by keystroke against
// POST /v1/suggest — accepting suggested patterns when the user model says
// so, drawing edges manually otherwise. The gate writes BENCH_suggest.json
// and fails when the per-keystroke p99 exceeds the interactive budget
// (~100ms, the engine's anytime deadline), when the replayed users save no
// formulation steps (μ must be positive — autocompletion that never helps
// is a correctness failure of the ranking, not a tuning matter), or when
// any response errors or is internally inconsistent. Opt-in via
// BENCH_GATE_SUGGEST=1 so regular `go test ./...` stays fast.
package catapult_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	catapult "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// Gate thresholds: every keystroke must answer inside the engine's anytime
// budget (the service degrades rather than blocks, so a p99 above the
// budget means the ladder is broken), and the replay must save steps.
const (
	suggestGateMaxP99 = 100 * time.Millisecond
	suggestGateUsers  = 8
)

func TestSuggestBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GATE_SUGGEST") == "" {
		t.Skip("set BENCH_GATE_SUGGEST=1 to run the autocompletion benchmark gate")
	}

	// The quickstart workload: examples/quickstart's database and budget.
	db := dataset.AIDSLike(200, 1)
	m, err := catapult.NewMaintainerCtx(context.Background(), db, catapult.Config{
		Budget:     core.Budget{EtaMin: 3, EtaMax: 8, Gamma: 10},
		Clustering: cluster.Config{Strategy: cluster.HybridMCCS, N: 20, MinSupport: 0.1},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := catapult.NewPatternServer(catapult.PatternServerOptions{})
	if _, err := s.AddTenant(serve.DefaultTenant, m.ServeSource()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	users := serveBenchEnvInt("SUGGEST_BENCH_USERS", suggestGateUsers)
	targets := serveBenchEnvInt("SUGGEST_BENCH_TARGETS", 4)

	res, err := loadtest.RunKeystrokes(context.Background(), loadtest.KeystrokeOptions{
		BaseURL: srv.URL,
		Users:   users,
		Seed:    42,
		Targets: targets,
		// A strongly accepting fleet: the gate measures whether ranked
		// suggestions, when taken, actually shorten formulation — not how
		// often the cognitive-load model declines them.
		AcceptProb:  2,
		ExtendEdges: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	report := struct {
		*loadtest.KeystrokeResult
		GateMaxP99Ms float64 `json:"gate_max_p99_ms"`
		GateMinMu    float64 `json:"gate_min_mu"`
		Dataset      string  `json:"dataset"`
		Patterns     int     `json:"patterns"`
	}{res, float64(suggestGateMaxP99.Milliseconds()), 0, db.Name, len(m.Patterns())}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_suggest.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("suggest gate: %d users, %d targets, %d keystrokes, p50=%v p90=%v p99=%v, accepts=%d, degraded=%d, mu=%.3f\n",
		res.Users, res.Targets, res.Keystrokes, res.P50, res.P90, res.P99,
		res.Accepts, res.Degraded, res.Mu)

	if res.Errors > 0 {
		t.Errorf("%d request errors (first: %s)", res.Errors, res.FirstError)
	}
	if res.TornReads > 0 {
		t.Errorf("%d internally inconsistent suggest responses", res.TornReads)
	}
	if res.Keystrokes == 0 {
		t.Fatal("replay issued no keystrokes")
	}
	if res.P99 > suggestGateMaxP99 {
		t.Errorf("per-keystroke p99 %v above the %v gate", res.P99, suggestGateMaxP99)
	}
	if res.Mu <= 0 {
		t.Errorf("steps saved μ = %.3f; suggestions must shorten formulation (StepP=%d StepTotal=%d accepts=%d)",
			res.Mu, res.StepP, res.StepTotal, res.Accepts)
	}
}
