module extconsumer

go 1.22

require repro v0.0.0

replace repro => ../..
