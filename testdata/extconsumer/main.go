// Command extconsumer is the external-consumer compile smoke for the
// catapult facade: it lives outside the repro module (wired in via a
// replace directive) and therefore cannot import any repro/internal/...
// package. Everything it touches — configuration, selection, results,
// health, incremental maintenance, metrics — must compile using only
// catapult.* names. Built (not run) by TestExternalConsumerCompiles.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"time"

	catapult "repro"
)

func main() {
	// Build a tiny database from scratch through the public constructors.
	var gs []*catapult.Graph
	for i := 0; i < 8; i++ {
		g := catapult.NewGraph(4, 4)
		vs := []catapult.VertexID{
			g.AddVertex("C"), g.AddVertex("N"), g.AddVertex("O"), g.AddVertex("C"),
		}
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
			_ = g.AddEdge(vs[e[0]], vs[e[1]])
		}
		gs = append(gs, g)
	}
	db := catapult.NewDB("ext", gs)

	// The frozen-graph surface: freeze the database up front, inspect the
	// shared interner and the flat-array footprint.
	var stats catapult.FrozenStats = db.Freeze()
	var in *catapult.Interner = catapult.SharedInterner()
	var f *catapult.Frozen = gs[0].Freeze()
	var lid catapult.LabelID = f.Label(0)
	fmt.Println(stats.Graphs, stats.Labels, stats.Bytes, in.Len(), in.LabelString(lid))

	// Full public configuration, observability included.
	m := catapult.NewMetrics()
	cfg := catapult.Config{
		Budget:     catapult.Budget{EtaMin: 3, EtaMax: 4, Gamma: 2},
		Clustering: catapult.ClusterConfig{Strategy: catapult.HybridMCCS, N: 4, MinSupport: 0.2},
		Selection:  catapult.SelectionOptions{Walks: 5},
		Degradation: catapult.DegradationConfig{
			Enabled:  true,
			Deadline: 30 * time.Second,
			Weights:  catapult.DegradationWeights{Clustering: 0.6, CSG: 0.1, Selection: 0.3},
		},
		Observer:           catapult.MetricsObserver(m),
		Seed:               1,
		DisableFrozenGraph: false,
	}

	res, err := catapult.SelectCtx(context.Background(), db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Consume the full Result through public names.
	var patterns []*catapult.Pattern = res.Patterns
	for _, p := range patterns {
		fmt.Println(p.Size(), p.Score, p.Ccov, p.Lcov)
	}
	var csgs []*catapult.CSG = res.CSGs
	fmt.Println(len(csgs), len(res.Clusters), res.ClusteringTime, res.PatternTime)
	var counters map[catapult.Counter]int64 = res.Counters
	fmt.Println(counters[catapult.Counter("vf2_calls")])
	var health *catapult.Health = res.Health
	if health != nil {
		var reports []catapult.StageReport = health.Stages
		var faults []*catapult.StageFault = health.Faults
		fmt.Println(res.Degraded(), len(reports), len(faults))
	}

	// Per-keystroke autocompletion against the selected pattern set:
	// the Suggester surface plus the one-shot SuggestCtx convenience,
	// consumed entirely through catapult.* names.
	var eng *catapult.Suggester = catapult.NewSuggester(res.Patterns)
	sopts := catapult.SuggestOptions{TopK: 3, Budget: 50 * time.Millisecond}
	partial := catapult.NewGraph(2, 1)
	pu, pv := partial.AddVertex("C"), partial.AddVertex("N")
	_ = partial.AddEdge(pu, pv)
	var sres *catapult.SuggestResult
	sres, err = eng.SuggestCtx(context.Background(), partial, sopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var sstats catapult.SuggestStats = sres.Stats
	fmt.Println(sstats.Patterns, sstats.Candidates, sstats.Degraded, eng.NumPatterns())
	for _, s := range sres.Suggestions {
		var sg catapult.Suggestion = s
		fmt.Println(sg.Pattern, sg.Contained, sg.Distance, sg.Rank)
	}
	if sres2, err := catapult.SuggestCtx(context.Background(), res, partial, sopts); err == nil {
		fmt.Println(len(sres2.Suggestions))
	}
	// The HTTP response shape of POST /v1/suggest stays decodable too.
	var sresp catapult.ServeSuggestResponse
	var sview catapult.ServeSuggestionView
	_ = sresp
	_ = sview

	// Incremental maintenance plus operational gauges.
	mt, err := catapult.NewMaintainerCtx(context.Background(), db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mt.EnableMetrics(m)
	if _, err := mt.AddGraphsCtx(context.Background(), gs[:1]); err != nil {
		fmt.Println("refresh queued:", mt.Pending(), mt.NextRetry(), mt.LastErr())
	}

	// The scrape surface.
	http.Handle("/metrics", m.Handler())
	if err := catapult.WriteDB(os.Stdout, catapult.NewDB("patterns", res.PatternGraphs())); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
